#ifndef DECA_NET_WIRE_H_
#define DECA_NET_WIRE_H_

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "net/net_stats.h"

namespace deca::net {

// -- Message framing ----------------------------------------------------------
//
// Everything that crosses a Transport is one *message*: a LEB128 varint
// byte length followed by that many body bytes. The first body byte is the
// message type; the rest is type-specific, encoded with the same
// ByteWriter/ByteReader primitives the rest of the codebase uses.
// Both transports (loopback and TCP) move exactly these bytes, so wire
// byte counts are identical across them.

enum class MsgType : uint8_t {
  kIndexRequest = 1,   // shuffle_id, reducer -> kIndexResponse
  kIndexResponse = 2,  // n x (map_partition, frame_bytes)
  kFetchRequest = 3,   // shuffle_id, reducer, map_partition, offset, max
  kFetchResponse = 4,  // status, frame_bytes_total, slice bytes
  kFailProbe = 5,      // stage, partition, attempt -> kErrorResponse
  kErrorResponse = 6,  // status
};

/// Status byte of kFetchResponse / kErrorResponse.
enum class WireStatus : uint8_t {
  kOk = 0,
  kNotFound = 1,
  kInjectedFailure = 2,  // the deterministic fault injector's doing
};

/// Prepends the varint length header to `body`, producing one on-wire
/// message.
std::vector<uint8_t> FrameMessage(const ByteWriter& body);

/// Splits one on-wire message into its body span. Returns false if the
/// buffer is truncated or the header disagrees with the buffer size.
bool UnframeMessage(const std::vector<uint8_t>& wire, ByteReader* body);

// -- Shuffle chunk wire codecs ------------------------------------------------
//
// A map task's per-reducer chunk is encoded once at deposit time into a
// *frame* that later travels to the reducer in slices. Two codecs
// reproduce the trade-off the paper frames ("GC or serialization?"):
//
//   kPage    Deca mode. The chunk's decomposed page bytes ship as-is
//            behind a 6-byte-ish header: no per-record work at either
//            end (records_encoded stays 0, encode time is one memcpy).
//   kRecord  JVM mode (Kryo-like). Every record is framed with its own
//            varint length and copied individually, mirroring a
//            per-record serializer's costs: wire bytes grow by one
//            length varint per record and encode/decode walk each
//            record.
//
// Both codecs decode back to the byte-exact original chunk, so results
// are bit-identical to the local (no-wire) shuffle no matter the codec.

enum class WireCodec : uint8_t {
  kPage = 0,
  kRecord = 1,
};

const char* WireCodecName(WireCodec c);

/// Record-boundary metadata for a deposited chunk, used only by the
/// kRecord codec. Either `fixed_record_bytes` is set (uniform stride —
/// Deca's fixed-size decomposed entries) or `record_lens` lists each
/// record's byte length in chunk order. When neither is provided the
/// codec falls back to treating the whole chunk as one record.
struct ChunkMeta {
  uint32_t fixed_record_bytes = 0;
  std::vector<uint32_t> record_lens;
};

/// Encodes `payload` into a wire frame with `codec`, updating
/// records_encoded / encode_ns / payload_bytes in `stats`.
std::vector<uint8_t> EncodeFrame(WireCodec codec,
                                 const std::vector<uint8_t>& payload,
                                 const ChunkMeta& meta, NetStats* stats);

/// Decodes a reassembled frame back into the original chunk payload,
/// updating records_decoded / decode_ns. Returns false on a malformed
/// frame.
bool DecodeFrame(const std::vector<uint8_t>& frame,
                 std::vector<uint8_t>* payload, NetStats* stats);

}  // namespace deca::net

#endif  // DECA_NET_WIRE_H_
