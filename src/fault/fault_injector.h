#ifndef DECA_FAULT_FAULT_INJECTOR_H_
#define DECA_FAULT_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>

#include "fault/fault_config.h"
#include "fault/task_failure.h"
#include "jvm/heap.h"

namespace deca::fault {

/// Optional detour for injected shuffle-fetch failures: when installed
/// (the network shuffle service), the doomed fetch travels the transport
/// path — probe request, refusals, retries with virtual backoff — before
/// the injector's ShuffleFetchFailure surfaces. The decision to fail and
/// the exception thrown stay the injector's, so fault counts and retry
/// schedules are bit-identical with or without a network transport.
class FetchFailurePath {
 public:
  virtual ~FetchFailurePath() = default;
  /// Must throw ShuffleFetchFailure(stage, partition, attempt) after
  /// exercising the transport path. Must not touch any executor heap.
  virtual void FailFetch(int stage, int partition, int attempt) = 0;
};

/// Fires the faults described by a FaultConfig. Every decision is a pure
/// hash of (seed, kind, stage, partition, attempt), so a plan replays
/// identically whether tasks run sequentially on the driver or on the
/// parallel executor threads.
///
/// Determinism-by-construction guarantees:
///  - Task and fetch failures throw at attempt start, before the task body
///    touches the heap — a retried attempt replays the exact allocation
///    history the fault-free run would have produced.
///  - Forced allocation failures arm the heap so the attempt's first
///    allocation throws before any externally visible write; the armed
///    counter never leaks across attempts (the retry wrapper clears it).
///  - No fault ever fires on a task's last allowed attempt, so an enabled
///    plan cannot fail a job that would otherwise succeed.
class FaultInjector {
 public:
  FaultInjector(const FaultConfig& config, int max_task_failures);

  bool enabled() const { return config_.enabled(); }

  /// Called at the start of every task attempt, on the heap's mutator
  /// thread. Throws InjectedTaskFailure / ShuffleFetchFailure, or arms one
  /// forced allocation failure on `heap`.
  void OnTaskAttempt(int stage, int partition, int attempt, jvm::Heap* heap);

  /// The executor to crash-wipe at the boundary before `stage`, or -1.
  int CrashWipeBefore(int stage) const;

  /// Drains the count of faults fired since the last call (thread-safe).
  uint64_t TakeFired() { return fired_.exchange(0, std::memory_order_relaxed); }

  /// Routes injected fetch failures through `path` (not owned; may be
  /// null to restore the direct throw). Set before any task runs.
  void set_fetch_failure_path(FetchFailurePath* path) { fetch_path_ = path; }

 private:
  bool Fire(uint64_t kind_salt, int stage, int partition, int attempt,
            double prob) const;

  FaultConfig config_;
  int max_attempts_;
  std::atomic<uint64_t> fired_{0};
  FetchFailurePath* fetch_path_ = nullptr;
};

}  // namespace deca::fault

#endif  // DECA_FAULT_FAULT_INJECTOR_H_
