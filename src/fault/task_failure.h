#ifndef DECA_FAULT_TASK_FAILURE_H_
#define DECA_FAULT_TASK_FAILURE_H_

#include <stdexcept>
#include <string>

namespace deca::fault {

/// Base of the retryable task-failure hierarchy. The engine retries a
/// task that throws a TaskFailure on the same executor — in the same
/// per-executor FIFO slot, so the heap's allocation/GC history stays the
/// sequential one — up to SparkConfig::max_task_failures attempts; any
/// other exception type is treated as a programming error and propagates
/// immediately.
class TaskFailure : public std::runtime_error {
 public:
  TaskFailure(const std::string& kind, int stage, int partition, int attempt)
      : std::runtime_error(kind + " (stage " + std::to_string(stage) +
                           ", partition " + std::to_string(partition) +
                           ", attempt " + std::to_string(attempt) + ")"),
        stage_(stage),
        partition_(partition),
        attempt_(attempt) {}

  int stage() const { return stage_; }
  int partition() const { return partition_; }
  int attempt() const { return attempt_; }

 private:
  int stage_;
  int partition_;
  int attempt_;
};

/// An injected task failure (models an executor dying mid-task).
class InjectedTaskFailure : public TaskFailure {
 public:
  InjectedTaskFailure(int stage, int partition, int attempt)
      : TaskFailure("injected task failure", stage, partition, attempt) {}
};

/// A failed shuffle-fetch read (models unreachable remote map outputs).
class ShuffleFetchFailure : public TaskFailure {
 public:
  ShuffleFetchFailure(int stage, int partition, int attempt)
      : TaskFailure("shuffle fetch failure", stage, partition, attempt) {}
};

/// A managed-heap allocation failure that survived the degradation ladder
/// (cache eviction + full collection + retry). Carries the collector
/// state dump captured at the failure point.
class TaskOomFailure : public TaskFailure {
 public:
  TaskOomFailure(int stage, int partition, int attempt, std::string heap_dump)
      : TaskFailure("task OOM", stage, partition, attempt),
        heap_dump_(std::move(heap_dump)) {}

  const std::string& heap_dump() const { return heap_dump_; }

 private:
  std::string heap_dump_;
};

/// An executor process died (or stopped answering) while it still owned
/// in-flight tasks of the current stage. Deliberately NOT a TaskFailure:
/// the lost tasks must not be retried into the dead process's slot, and
/// partial results it produced must not be merged. The driver catches
/// this at the stage boundary, quarantines the stage's partial output,
/// recovers the executor, and retries the whole stage.
class ExecutorLostError : public std::runtime_error {
 public:
  ExecutorLostError(int executor, int stage, const std::string& detail)
      : std::runtime_error("executor " + std::to_string(executor) +
                           " lost during stage " + std::to_string(stage) +
                           ": " + detail),
        executor_(executor),
        stage_(stage) {}

  int executor() const { return executor_; }
  int stage() const { return stage_; }

 private:
  int executor_;
  int stage_;
};

}  // namespace deca::fault

#endif  // DECA_FAULT_TASK_FAILURE_H_
