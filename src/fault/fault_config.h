#ifndef DECA_FAULT_FAULT_CONFIG_H_
#define DECA_FAULT_FAULT_CONFIG_H_

#include <cstdint>

namespace deca::fault {

/// Deterministic fault-injection plan for one application run. All
/// injection decisions are pure functions of (seed, stage, partition,
/// attempt), so a plan reproduces exactly across sequential and parallel
/// executions of the same job. Disabled by default: a default-constructed
/// config injects nothing.
struct FaultConfig {
  /// Seed for the per-(stage, partition, attempt) decision hash.
  uint64_t seed = 1;

  /// Probability that a task attempt fails at start with an
  /// InjectedTaskFailure (models lost executors/JVM crashes mid-task).
  double task_failure_prob = 0.0;

  /// Probability that a task attempt fails at start with a
  /// ShuffleFetchFailure (models unreachable remote shuffle blocks).
  double fetch_failure_prob = 0.0;

  /// Probability that a task attempt's first managed-heap allocation is
  /// forced to fail, surfacing as a retryable TaskOomFailure.
  double oom_failure_prob = 0.0;

  /// Crash-wipe `crash_wipe_executor` (heap + cache + map outputs) at the
  /// boundary before stage `crash_wipe_stage` (stages are numbered from 0
  /// in RunStage call order). -1 disables the wipe.
  int crash_wipe_stage = -1;
  int crash_wipe_executor = -1;

  bool enabled() const {
    return task_failure_prob > 0.0 || fetch_failure_prob > 0.0 ||
           oom_failure_prob > 0.0 ||
           (crash_wipe_stage >= 0 && crash_wipe_executor >= 0);
  }
};

}  // namespace deca::fault

#endif  // DECA_FAULT_FAULT_CONFIG_H_
