#include "fault/fault_injector.h"

#include <algorithm>

namespace deca::fault {

namespace {

/// splitmix64 finalizer: a high-quality 64-bit mix.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

FaultInjector::FaultInjector(const FaultConfig& config, int max_task_failures)
    : config_(config), max_attempts_(std::max(1, max_task_failures)) {}

bool FaultInjector::Fire(uint64_t kind_salt, int stage, int partition,
                         int attempt, double prob) const {
  if (prob <= 0.0) return false;
  uint64_t h = Mix(config_.seed ^ kind_salt);
  h = Mix(h ^ static_cast<uint64_t>(stage));
  h = Mix(h ^ static_cast<uint64_t>(partition));
  h = Mix(h ^ static_cast<uint64_t>(attempt));
  // Top 53 bits -> uniform double in [0, 1).
  double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < prob;
}

void FaultInjector::OnTaskAttempt(int stage, int partition, int attempt,
                                  jvm::Heap* heap) {
  if (!enabled()) return;
  // The last allowed attempt always runs clean: an injection plan can slow
  // a job down but never fail one that would otherwise succeed.
  if (attempt >= max_attempts_ - 1) return;
  if (Fire(0x7a5bULL, stage, partition, attempt, config_.task_failure_prob)) {
    fired_.fetch_add(1, std::memory_order_relaxed);
    throw InjectedTaskFailure(stage, partition, attempt);
  }
  if (Fire(0xfe7cULL, stage, partition, attempt, config_.fetch_failure_prob)) {
    fired_.fetch_add(1, std::memory_order_relaxed);
    if (fetch_path_ != nullptr) {
      // Network shuffle: the doomed fetch exercises the wire (probe +
      // retries) and throws the same ShuffleFetchFailure from in there.
      fetch_path_->FailFetch(stage, partition, attempt);
    }
    throw ShuffleFetchFailure(stage, partition, attempt);
  }
  if (Fire(0x00a1ULL, stage, partition, attempt, config_.oom_failure_prob)) {
    fired_.fetch_add(1, std::memory_order_relaxed);
    heap->ForceAllocationFailures(1);
  }
}

int FaultInjector::CrashWipeBefore(int stage) const {
  if (config_.crash_wipe_stage == stage && config_.crash_wipe_executor >= 0) {
    return config_.crash_wipe_executor;
  }
  return -1;
}

}  // namespace deca::fault
