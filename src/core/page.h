#ifndef DECA_CORE_PAGE_H_
#define DECA_CORE_PAGE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/bytes.h"
#include "common/logging.h"
#include "jvm/heap.h"
#include "memory/memory_manager.h"

namespace deca::core {

/// Location of a byte segment inside a page group: (page index, byte
/// offset). Stable across garbage collections (pages are managed byte
/// arrays that moving collectors may relocate; the group's root provider
/// keeps the page references up to date).
struct SegPtr {
  uint32_t page = 0;
  uint32_t offset = 0;

  bool operator==(const SegPtr& o) const {
    return page == o.page && offset == o.offset;
  }
};

/// A group of fixed-size logical memory pages owned by one data container
/// (paper Section 4.3.1). Each page is a single managed byte array in the
/// executor's heap, so a container holding millions of decomposed objects
/// contributes only a handful of GC roots; destroying the group releases
/// the page references and the GC reclaims all of the data at once.
///
/// Share groups between containers with std::shared_ptr — this is the
/// paper's reference-counting reclamation of shared page groups. A
/// secondary container that stores pointers into a primary's pages keeps
/// the primary group alive through `AddDependency` (the paper's depPages).
///
/// When the owning heap has a memory::ExecutorMemoryManager attached,
/// every page allocation/release charges the group's footprint to the
/// manager — by default to the execution pool (shuffle buffers, agg
/// tables, sort runs); the cache re-tags groups it takes ownership of via
/// `SetChargePool(kStorage)`.
class PageGroup : public memory::PageFootprintSource {
 public:
  /// `page_bytes` is the common fixed page size; segments never straddle
  /// pages, so it bounds the largest record.
  PageGroup(jvm::Heap* heap, uint32_t page_bytes);
  ~PageGroup() override;

  PageGroup(const PageGroup&) = delete;
  PageGroup& operator=(const PageGroup&) = delete;

  /// Reserves a `bytes`-long segment at the end of the group (allocating a
  /// fresh page when the current one cannot fit it) and returns its
  /// location. `bytes` must be <= page_bytes. May trigger GC.
  SegPtr Append(uint32_t bytes);

  /// Returns the raw address of a segment. Valid only until the next
  /// managed-heap allocation (which may move pages).
  uint8_t* Resolve(SegPtr p) const {
    DECA_DCHECK_LT(p.page, pages_.refs().size());
    return heap_->ArrayData(pages_.refs()[p.page]) + p.offset;
  }

  /// Records that this group's segments point into `dep`'s pages, keeping
  /// `dep` alive for this group's lifetime (paper's depPages field).
  void AddDependency(std::shared_ptr<PageGroup> dep) {
    dep_groups_.push_back(std::move(dep));
  }

  jvm::Heap* heap() const { return heap_; }
  uint32_t page_bytes() const { return page_bytes_; }
  uint32_t page_count() const {
    return static_cast<uint32_t>(pages_.refs().size());
  }
  /// Bytes appended into page `i`.
  uint32_t page_used(uint32_t i) const { return used_[i]; }
  /// Total data bytes across all pages.
  uint64_t used_bytes() const;
  /// Total heap footprint (page_count * page size, headers included).
  uint64_t footprint_bytes() const override;
  /// Number of appended segments.
  uint64_t segment_count() const { return segment_count_; }

  /// True when appending `bytes` would allocate a fresh page (the
  /// sort-spill writer probes the memory manager before committing to
  /// one).
  bool NeedsNewPage(uint32_t bytes) const {
    return used_.empty() || used_.back() + bytes > page_bytes_;
  }
  /// Heap footprint one page costs (header included).
  uint64_t page_cost_bytes() const {
    return static_cast<uint64_t>(page_bytes_) + jvm::kHeaderBytes;
  }

  /// Raw page-bytes fast path (paper Appendix C): writes `page count,
  /// then per page (used bytes, raw data)`. Decomposed segments are
  /// already GC-free bytes, so demoting or swapping a kDecaPages block is
  /// a header plus memcpys — no per-record serialization. The format is
  /// shared by the off-heap tier (T1) and the swap files (T2).
  void EncodeRaw(ByteWriter* out) const;
  /// Direct-write variant of EncodeRaw into a caller-sized buffer of at
  /// least encoded_raw_bytes() (the arena staging path: no intermediate
  /// growable vector). Returns the bytes written (== encoded_raw_bytes()).
  size_t EncodeRawTo(uint8_t* dst) const;
  /// Rebuilds a group from EncodeRaw bytes (allocating managed pages on
  /// `heap`; charges the execution pool like any fresh group).
  static std::shared_ptr<PageGroup> DecodeRaw(jvm::Heap* heap,
                                              uint32_t page_bytes,
                                              ByteReader* in);
  /// Size EncodeRaw will produce, without materializing it.
  uint64_t encoded_raw_bytes() const;

  /// Moves this group's charged footprint to `pool` (and tags future
  /// pages). No-op without a memory manager.
  void SetChargePool(memory::Pool pool);
  memory::Pool charge_pool() const { return pool_; }

  /// Drops all pages and dependencies (the group becomes empty; the GC can
  /// reclaim the space at the next collection).
  void Clear();

 private:
  jvm::Heap* heap_;
  uint32_t page_bytes_;
  memory::ExecutorMemoryManager* mm_;  // may be null (standalone heaps)
  memory::Pool pool_ = memory::Pool::kExecution;
  jvm::VectorRootProvider pages_;  // registered with the heap
  std::vector<uint32_t> used_;     // bytes used per page
  uint64_t segment_count_ = 0;
  std::vector<std::shared_ptr<PageGroup>> dep_groups_;
};

/// Sequential scanner over a page group's segments (the paper's
/// curPage/curOffset cursor). The caller supplies record sizes (records
/// are fixed-size for SFSTs or self-describing for RFSTs).
class PageScanner {
 public:
  explicit PageScanner(const PageGroup* group) : group_(group) {}

  bool AtEnd() {
    Normalize();
    return page_ >= group_->page_count();
  }

  /// Raw pointer at the cursor (valid until the next allocation).
  uint8_t* Cur() {
    Normalize();
    return group_->Resolve({page_, offset_});
  }

  SegPtr CurPtr() {
    Normalize();
    return {page_, offset_};
  }

  void Advance(uint32_t bytes) { offset_ += bytes; }

  void Reset() {
    page_ = 0;
    offset_ = 0;
  }

 private:
  void Normalize() {
    while (page_ < group_->page_count() &&
           offset_ >= group_->page_used(page_)) {
      ++page_;
      offset_ = 0;
    }
  }

  const PageGroup* group_;
  uint32_t page_ = 0;
  uint32_t offset_ = 0;
};

/// Sequential scanner over EncodeRaw bytes without rebuilding a page
/// group: yields each encoded page's (data pointer, used bytes). This is
/// the zero-copy serving path for demoted kDecaPages blocks — a query
/// walks fixed-size decomposed records straight out of the packed T1
/// buffer, allocating nothing on the managed heap.
class RawPageCursor {
 public:
  RawPageCursor(const uint8_t* data, size_t size) : reader_(data, size) {
    page_count_ = reader_.Read<uint32_t>();
  }

  /// Advances to the next encoded page; false once all pages are read.
  bool Next(const uint8_t** page_data, uint32_t* used) {
    if (index_ >= page_count_) return false;
    uint32_t u = reader_.Read<uint32_t>();
    *used = u;
    *page_data = reader_.Skip(u);
    ++index_;
    return true;
  }

  uint32_t page_count() const { return page_count_; }

 private:
  ByteReader reader_;
  uint32_t page_count_ = 0;
  uint32_t index_ = 0;
};

}  // namespace deca::core

#endif  // DECA_CORE_PAGE_H_
