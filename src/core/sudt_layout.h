#ifndef DECA_CORE_SUDT_LAYOUT_H_
#define DECA_CORE_SUDT_LAYOUT_H_

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "analysis/udt_type.h"
#include "jvm/object_model.h"

namespace deca::core {

/// Fixed array lengths established by the global classifier's
/// fixed-length-array analysis (e.g. "DenseVector.data always has length
/// D"). Consulted when synthesizing SFST layouts.
class LengthResolver {
 public:
  void SetFixedLength(const analysis::UdtType* owner,
                      const std::string& field, uint32_t length);

  std::optional<uint32_t> Lookup(const analysis::UdtType* owner,
                                 const std::string& field) const;

 private:
  std::map<std::pair<const analysis::UdtType*, std::string>, uint32_t>
      lengths_;
};

/// One leaf of a decomposed object layout.
struct SudtField {
  /// Dotted access path from the top-level object, e.g. "features.data".
  std::string path;
  /// Primitive kind of the leaf values.
  jvm::FieldKind kind;
  /// Byte offset within the record's fixed part (meaningless for
  /// variable-length fields, which live after the fixed part in layout
  /// order).
  uint32_t offset = 0;
  /// Number of values: 1 for scalars, N for fixed-length arrays.
  uint32_t count = 1;
  /// True for arrays whose length is per-instance (RFST): stored inline as
  /// a u32 length prefix followed by the elements.
  bool variable_length = false;
};

/// The synthesized byte-sequence layout of a decomposable UDT — the C++
/// analogue of the paper's SUDT offset computation (Appendix B). Reference
/// fields and object headers are discarded; primitive leaves are laid out
/// with determinable-size fields reordered to the front so their offsets
/// are compile-time constants, followed by the variable-length arrays.
class SudtLayout {
 public:
  /// Flattens `t`. `t` must be decomposable (SFST/RFST — the caller runs
  /// the classifier first). Every reference field must have a singleton
  /// type-set, and array elements must be primitive. `elided_paths` lists
  /// leaves whose values the optimizer proved to be compile-time constants
  /// (e.g. DenseVector's offset/stride/length after constant propagation,
  /// paper Appendix B); they are dropped from the byte layout, as in the
  /// paper's Figure 2.
  static SudtLayout Build(const analysis::UdtType* t,
                          const LengthResolver& lengths,
                          const std::set<std::string>& elided_paths = {});

  /// Size of the fixed part (all reordered fixed-size leaves).
  uint32_t fixed_bytes() const { return fixed_bytes_; }

  bool has_variable_part() const { return !variable_fields_.empty(); }

  /// Total record size for SFSTs (aborts if a variable part exists).
  uint32_t static_size() const;

  /// Record size given the runtime lengths of the variable arrays (in
  /// layout order).
  uint32_t RuntimeSize(const std::vector<uint32_t>& var_lengths) const;

  const std::vector<SudtField>& fixed_fields() const { return fixed_fields_; }
  const std::vector<SudtField>& variable_fields() const {
    return variable_fields_;
  }

  /// Looks a leaf up by path (searches both parts); aborts if missing.
  const SudtField& field(const std::string& path) const;

 private:
  std::vector<SudtField> fixed_fields_;
  std::vector<SudtField> variable_fields_;
  uint32_t fixed_bytes_ = 0;
};

}  // namespace deca::core

#endif  // DECA_CORE_SUDT_LAYOUT_H_
