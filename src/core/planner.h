#ifndef DECA_CORE_PLANNER_H_
#define DECA_CORE_PLANNER_H_

#include <string>
#include <vector>

#include "analysis/size_type.h"

namespace deca::core {

/// The three kinds of data containers Deca manages (paper Section 4.2).
enum class ContainerKind {
  kUdfVariables,
  kCacheBlock,
  kShuffleBuffer,
};

const char* ContainerKindName(ContainerKind k);

/// How a container stores its data after planning.
enum class ContainerLayout {
  /// Plain managed objects (not decomposable, or UDF variables).
  kObjects,
  /// Objects decomposed into this container's own page group.
  kDecomposed,
  /// Pointers (SegPtrs) into the primary container's page group, with a
  /// depPages link keeping it alive (paper Figure 7a).
  kPointersToPrimary,
  /// A shared copy of the primary's page-info: both containers use the
  /// same page group, reclaimed by reference counting (paper's special
  /// case of the fully decomposable scenario).
  kSharedPageInfo,
};

const char* ContainerLayoutName(ContainerLayout l);

/// One container in a job stage, as seen by the planner.
struct ContainerSpec {
  std::string name;
  ContainerKind kind = ContainerKind::kUdfVariables;
  /// Order in which the container is created during stage execution.
  int creation_order = 0;
  /// Size-type of the objects while held by this container (after phased
  /// refinement).
  analysis::SizeType size_type = analysis::SizeType::kVariable;
  /// True when this container holds exactly the same object set as the
  /// other containers of its group and imposes no ordering of its own.
  bool same_objects_no_ordering = false;
};

/// Planning result for one container.
struct ContainerDecision {
  ContainerLayout layout = ContainerLayout::kObjects;
  /// Index (within the group) of the owning container; -1 when this
  /// container is itself the primary or stores plain objects it owns.
  int primary_index = -1;
};

/// Applies the paper's ownership and decomposability rules (Section 4.3)
/// to a group of containers sharing the same data objects:
///   1. cached RDDs and shuffle buffers out-prioritize UDF variables;
///   2. among high-priority containers, the first created owns the data;
///   3. the primary decomposes its objects iff their size-type is SFST or
///      RFST; secondaries either share the page group, point into it, or
///      decompose their own copy (partially decomposable scenario).
class DecompositionPlanner {
 public:
  static std::vector<ContainerDecision> Plan(
      const std::vector<ContainerSpec>& group);

  /// Index of the primary container per the ownership rules.
  static int PrimaryIndex(const std::vector<ContainerSpec>& group);
};

}  // namespace deca::core

#endif  // DECA_CORE_PLANNER_H_
