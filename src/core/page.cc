#include "core/page.h"

namespace deca::core {

PageGroup::PageGroup(jvm::Heap* heap, uint32_t page_bytes)
    : heap_(heap), page_bytes_(page_bytes), mm_(heap->memory_manager()) {
  DECA_CHECK_GT(page_bytes, 0u);
  heap_->AddRootProvider(&pages_);
  if (mm_ != nullptr) mm_->RegisterPageSource(this);
}

PageGroup::~PageGroup() {
  if (mm_ != nullptr) {
    mm_->UnchargePages(pool_, footprint_bytes());
    mm_->UnregisterPageSource(this);
  }
  heap_->RemoveRootProvider(&pages_);
}

SegPtr PageGroup::Append(uint32_t bytes) {
  DECA_CHECK_LE(bytes, page_bytes_)
      << "record larger than the Deca page size";
  if (NeedsNewPage(bytes)) {
    // Pages are large objects: allocated directly in the old generation,
    // where they stay for the lifetime of their container.
    jvm::ObjRef page =
        heap_->AllocateArray(heap_->registry()->byte_array_class(),
                             page_bytes_);
    pages_.refs().push_back(page);
    used_.push_back(0);
    if (mm_ != nullptr) mm_->ChargePages(pool_, page_cost_bytes());
  }
  uint32_t page_idx = static_cast<uint32_t>(used_.size() - 1);
  SegPtr seg{page_idx, used_.back()};
  used_.back() += bytes;
  ++segment_count_;
  return seg;
}

void PageGroup::EncodeRaw(ByteWriter* out) const {
  out->Write<uint32_t>(page_count());
  for (uint32_t i = 0; i < page_count(); ++i) {
    uint32_t used = used_[i];
    out->Write<uint32_t>(used);
    out->WriteBytes(Resolve({i, 0}), used);
  }
}

size_t PageGroup::EncodeRawTo(uint8_t* dst) const {
  uint8_t* p = dst;
  StoreRaw<uint32_t>(p, page_count());
  p += sizeof(uint32_t);
  for (uint32_t i = 0; i < page_count(); ++i) {
    uint32_t used = used_[i];
    StoreRaw<uint32_t>(p, used);
    p += sizeof(uint32_t);
    std::memcpy(p, Resolve({i, 0}), used);
    p += used;
  }
  return static_cast<size_t>(p - dst);
}

std::shared_ptr<PageGroup> PageGroup::DecodeRaw(jvm::Heap* heap,
                                                uint32_t page_bytes,
                                                ByteReader* in) {
  auto group = std::make_shared<PageGroup>(heap, page_bytes);
  uint32_t pages = in->Read<uint32_t>();
  for (uint32_t i = 0; i < pages; ++i) {
    uint32_t used = in->Read<uint32_t>();
    SegPtr seg = group->Append(used);
    in->ReadBytes(group->Resolve(seg), used);
  }
  return group;
}

uint64_t PageGroup::encoded_raw_bytes() const {
  return 4 + 4ull * page_count() + used_bytes();
}

uint64_t PageGroup::used_bytes() const {
  uint64_t total = 0;
  for (uint32_t u : used_) total += u;
  return total;
}

uint64_t PageGroup::footprint_bytes() const {
  return static_cast<uint64_t>(page_count()) *
         (page_bytes_ + jvm::kHeaderBytes);
}

void PageGroup::SetChargePool(memory::Pool pool) {
  if (mm_ != nullptr && pool != pool_) {
    mm_->TransferPages(pool_, pool, footprint_bytes());
  }
  pool_ = pool;
}

void PageGroup::Clear() {
  if (mm_ != nullptr) mm_->UnchargePages(pool_, footprint_bytes());
  pages_.refs().clear();
  used_.clear();
  segment_count_ = 0;
  dep_groups_.clear();
}

}  // namespace deca::core
