#include "core/page.h"

namespace deca::core {

PageGroup::PageGroup(jvm::Heap* heap, uint32_t page_bytes)
    : heap_(heap), page_bytes_(page_bytes) {
  DECA_CHECK_GT(page_bytes, 0u);
  heap_->AddRootProvider(&pages_);
}

PageGroup::~PageGroup() { heap_->RemoveRootProvider(&pages_); }

SegPtr PageGroup::Append(uint32_t bytes) {
  DECA_CHECK_LE(bytes, page_bytes_)
      << "record larger than the Deca page size";
  if (used_.empty() || used_.back() + bytes > page_bytes_) {
    // Pages are large objects: allocated directly in the old generation,
    // where they stay for the lifetime of their container.
    jvm::ObjRef page =
        heap_->AllocateArray(heap_->registry()->byte_array_class(),
                             page_bytes_);
    pages_.refs().push_back(page);
    used_.push_back(0);
  }
  uint32_t page_idx = static_cast<uint32_t>(used_.size() - 1);
  SegPtr seg{page_idx, used_.back()};
  used_.back() += bytes;
  ++segment_count_;
  return seg;
}

uint64_t PageGroup::used_bytes() const {
  uint64_t total = 0;
  for (uint32_t u : used_) total += u;
  return total;
}

uint64_t PageGroup::footprint_bytes() const {
  return static_cast<uint64_t>(page_count()) *
         (page_bytes_ + jvm::kHeaderBytes);
}

void PageGroup::Clear() {
  pages_.refs().clear();
  used_.clear();
  segment_count_ = 0;
  dep_groups_.clear();
}

}  // namespace deca::core
