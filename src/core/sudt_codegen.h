#ifndef DECA_CORE_SUDT_CODEGEN_H_
#define DECA_CORE_SUDT_CODEGEN_H_

#include <string>

#include "core/sudt_layout.h"

namespace deca::core {

/// Emits C++ source text for an accessor view over a decomposed record —
/// the analogue of the paper's SUDT synthesis (Appendix B), where Deca
/// generates bytecode whose field accesses become byte-array reads at
/// precomputed offsets. Here the generated artifact is a header snippet
/// with one constexpr offset per leaf and inline typed getters/setters;
/// fields with determinable sizes come first so their offsets are
/// compile-time constants, and variable-length arrays are reached through
/// runtime offset computation, exactly as Appendix B describes.
///
/// `view_name` names the generated struct (e.g. "LabeledPointView").
std::string GenerateSudtAccessor(const std::string& view_name,
                                 const SudtLayout& layout);

}  // namespace deca::core

#endif  // DECA_CORE_SUDT_CODEGEN_H_
