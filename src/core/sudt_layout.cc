#include "core/sudt_layout.h"

#include "common/bytes.h"
#include "common/logging.h"

namespace deca::core {

using analysis::UdtField;
using analysis::UdtType;

void LengthResolver::SetFixedLength(const UdtType* owner,
                                    const std::string& field,
                                    uint32_t length) {
  lengths_[{owner, field}] = length;
}

std::optional<uint32_t> LengthResolver::Lookup(const UdtType* owner,
                                               const std::string& field) const {
  auto it = lengths_.find({owner, field});
  if (it == lengths_.end()) return std::nullopt;
  return it->second;
}

namespace {

void Flatten(const UdtType* t, const std::string& prefix,
             const LengthResolver& lengths,
             const std::set<std::string>& elided,
             std::vector<SudtField>* fixed,
             std::vector<SudtField>* variable) {
  DECA_CHECK(!t->is_primitive());
  DECA_CHECK(!t->is_array()) << "top-level arrays flatten via their field";
  for (const UdtField& f : t->fields()) {
    DECA_CHECK_EQ(f.type_set.size(), 1u)
        << "cannot decompose polymorphic field " << t->name() << "."
        << f.name;
    const UdtType* ft = f.type_set[0];
    std::string path = prefix.empty() ? f.name : prefix + "." + f.name;
    if (elided.count(path) != 0) continue;
    if (ft->is_primitive()) {
      fixed->push_back({path, ft->primitive_kind(), 0, 1, false});
    } else if (ft->is_array()) {
      DECA_CHECK_EQ(ft->element_field().type_set.size(), 1u);
      const UdtType* et = ft->element_field().type_set[0];
      DECA_CHECK(et->is_primitive())
          << "decomposition supports primitive array elements; " << path
          << " has " << et->name();
      if (auto len = lengths.Lookup(t, f.name)) {
        fixed->push_back({path, et->primitive_kind(), 0, *len, false});
      } else {
        variable->push_back({path, et->primitive_kind(), 0, 0, true});
      }
    } else {
      // Nested object: its header and the reference are discarded; its
      // primitive leaves are inlined (paper Figure 2).
      Flatten(ft, path, lengths, elided, fixed, variable);
    }
  }
}

}  // namespace

SudtLayout SudtLayout::Build(const UdtType* t, const LengthResolver& lengths,
                             const std::set<std::string>& elided_paths) {
  SudtLayout layout;
  Flatten(t, "", lengths, elided_paths, &layout.fixed_fields_,
          &layout.variable_fields_);
  // Assign fixed-part offsets with natural (packed) layout: the paper's
  // reordering already happened by construction (fixed leaves collected
  // separately from variable ones).
  uint32_t offset = 0;
  for (auto& f : layout.fixed_fields_) {
    f.offset = offset;
    offset += jvm::FieldKindBytes(f.kind) * f.count;
  }
  layout.fixed_bytes_ = offset;
  return layout;
}

uint32_t SudtLayout::static_size() const {
  DECA_CHECK(variable_fields_.empty())
      << "static_size on a layout with variable-length fields";
  return fixed_bytes_;
}

uint32_t SudtLayout::RuntimeSize(
    const std::vector<uint32_t>& var_lengths) const {
  DECA_CHECK_EQ(var_lengths.size(), variable_fields_.size());
  uint32_t size = fixed_bytes_;
  for (size_t i = 0; i < variable_fields_.size(); ++i) {
    size += 4 + var_lengths[i] * jvm::FieldKindBytes(variable_fields_[i].kind);
  }
  return size;
}

const SudtField& SudtLayout::field(const std::string& path) const {
  for (const auto& f : fixed_fields_) {
    if (f.path == path) return f;
  }
  for (const auto& f : variable_fields_) {
    if (f.path == path) return f;
  }
  DECA_LOG(Fatal) << "layout has no field " << path;
  return fixed_fields_[0];
}

}  // namespace deca::core
