#include "core/planner.h"

#include "common/logging.h"

namespace deca::core {

using analysis::IsDecomposable;

const char* ContainerKindName(ContainerKind k) {
  switch (k) {
    case ContainerKind::kUdfVariables:
      return "udf-vars";
    case ContainerKind::kCacheBlock:
      return "cache-block";
    case ContainerKind::kShuffleBuffer:
      return "shuffle-buffer";
  }
  return "?";
}

const char* ContainerLayoutName(ContainerLayout l) {
  switch (l) {
    case ContainerLayout::kObjects:
      return "objects";
    case ContainerLayout::kDecomposed:
      return "decomposed";
    case ContainerLayout::kPointersToPrimary:
      return "pointers";
    case ContainerLayout::kSharedPageInfo:
      return "shared-page-info";
  }
  return "?";
}

int DecompositionPlanner::PrimaryIndex(
    const std::vector<ContainerSpec>& group) {
  DECA_CHECK(!group.empty());
  int best = -1;
  for (size_t i = 0; i < group.size(); ++i) {
    const ContainerSpec& c = group[i];
    if (best < 0) {
      best = static_cast<int>(i);
      continue;
    }
    const ContainerSpec& b = group[static_cast<size_t>(best)];
    bool c_high = c.kind != ContainerKind::kUdfVariables;
    bool b_high = b.kind != ContainerKind::kUdfVariables;
    // Rule 1: cache blocks and shuffle buffers have priority over UDF
    // variables. Rule 2: among equals, first created wins.
    if ((c_high && !b_high) ||
        (c_high == b_high && c.creation_order < b.creation_order)) {
      best = static_cast<int>(i);
    }
  }
  return best;
}

std::vector<ContainerDecision> DecompositionPlanner::Plan(
    const std::vector<ContainerSpec>& group) {
  int primary = PrimaryIndex(group);
  const ContainerSpec& p = group[static_cast<size_t>(primary)];
  bool primary_decomposed = p.kind != ContainerKind::kUdfVariables &&
                            IsDecomposable(p.size_type);

  std::vector<ContainerDecision> result(group.size());
  for (size_t i = 0; i < group.size(); ++i) {
    const ContainerSpec& c = group[i];
    ContainerDecision& d = result[i];
    if (static_cast<int>(i) == primary) {
      d.layout = primary_decomposed ? ContainerLayout::kDecomposed
                                    : ContainerLayout::kObjects;
      d.primary_index = -1;
      continue;
    }
    d.primary_index = primary;
    if (c.kind == ContainerKind::kUdfVariables) {
      // UDF variables over decomposed data receive page-segment pointers;
      // over plain objects they receive references.
      d.layout = primary_decomposed ? ContainerLayout::kPointersToPrimary
                                    : ContainerLayout::kObjects;
      continue;
    }
    if (!IsDecomposable(c.size_type)) {
      d.layout = ContainerLayout::kObjects;
      continue;
    }
    if (primary_decomposed) {
      // Fully decomposable scenario (paper Figure 7a): share the page
      // group outright when contents and ordering allow, otherwise store
      // pointers plus a depPages link.
      d.layout = c.same_objects_no_ordering
                     ? ContainerLayout::kSharedPageInfo
                     : ContainerLayout::kPointersToPrimary;
    } else {
      // Partially decomposable scenario (paper Figure 7b): the primary
      // (e.g. a groupByKey shuffle buffer) keeps objects, but this
      // container decomposes its own copy since modifications need not
      // propagate back.
      d.layout = ContainerLayout::kDecomposed;
    }
  }
  return result;
}

}  // namespace deca::core
