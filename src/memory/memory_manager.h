#ifndef DECA_MEMORY_MEMORY_MANAGER_H_
#define DECA_MEMORY_MEMORY_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/logging.h"

namespace deca::memory {

/// The two arbitrated memory pools (Spark 1.6's UnifiedMemoryManager):
/// execution (shuffle buffers, aggregation tables, sort-spill runs) and
/// storage (cached RDD blocks).
enum class Pool : uint8_t { kExecution, kStorage };

const char* PoolName(Pool p);

class ExecutorMemoryManager;

/// An RAII grant of pool bytes. Releasing (or destroying) the reservation
/// returns the bytes to its pool. Move-only; an empty reservation holds
/// nothing.
class MemoryReservation {
 public:
  MemoryReservation() = default;
  ~MemoryReservation() { Release(); }

  MemoryReservation(MemoryReservation&& o) noexcept
      : mgr_(o.mgr_), pool_(o.pool_), bytes_(o.bytes_) {
    o.mgr_ = nullptr;
    o.bytes_ = 0;
  }
  MemoryReservation& operator=(MemoryReservation&& o) noexcept {
    if (this != &o) {
      Release();
      mgr_ = o.mgr_;
      pool_ = o.pool_;
      bytes_ = o.bytes_;
      o.mgr_ = nullptr;
      o.bytes_ = 0;
    }
    return *this;
  }
  MemoryReservation(const MemoryReservation&) = delete;
  MemoryReservation& operator=(const MemoryReservation&) = delete;

  /// True when this reservation holds bytes in a pool.
  bool held() const { return mgr_ != nullptr && bytes_ > 0; }
  uint64_t bytes() const { return bytes_; }
  Pool pool() const { return pool_; }

  /// Returns the bytes to the pool (idempotent).
  void Release();

 private:
  friend class ExecutorMemoryManager;
  MemoryReservation(ExecutorMemoryManager* mgr, Pool pool, uint64_t bytes)
      : mgr_(mgr), pool_(pool), bytes_(bytes) {}

  ExecutorMemoryManager* mgr_ = nullptr;
  Pool pool_ = Pool::kExecution;
  uint64_t bytes_ = 0;
};

/// A live owner of managed pages whose footprint is charged to the
/// manager (core::PageGroup). Registered sources let the manager
/// independently recompute the total page footprint, so tests can assert
/// the incremental charge accounting never drifts.
class PageFootprintSource {
 public:
  virtual ~PageFootprintSource() = default;
  /// Current heap footprint of this source's pages (headers included).
  virtual uint64_t footprint_bytes() const = 0;
};

/// Point-in-time accounting snapshot (all byte quantities).
struct MemoryStats {
  uint64_t total_bytes = 0;          // the unified per-executor budget
  uint64_t storage_floor_bytes = 0;  // storage memory execution cannot take
  uint64_t exec_used = 0;
  uint64_t exec_peak = 0;
  uint64_t storage_used = 0;
  uint64_t storage_peak = 0;
  uint64_t borrowed_peak = 0;        // peak bytes held across the pool split
  uint64_t denied_reservations = 0;  // requests that found no room
  uint64_t storage_reserved = 0;     // live storage-pool reservation bytes
  uint64_t demoted_blocks = 0;       // evictor demote-stage blocks compacted
  uint64_t spilled_blocks = 0;       // evictor spill-stage blocks to disk
  uint64_t page_bytes = 0;           // charged native-page footprint
  uint64_t heap_capacity = 0;        // committed managed-heap capacity
  uint64_t heap_used = 0;            // live bytes at the last reported GC
  uint64_t heap_old_used = 0;
};

/// One executor's memory-accounting plane: a single byte budget split into
/// an execution pool and a storage pool with Spark-1.6-style borrowing.
/// Storage may borrow idle execution memory (its limit is whatever
/// execution is not using); execution may reclaim borrowed storage memory
/// by evicting blocks, but never below the storage floor
/// (total * storage_fraction). The managed heap additionally registers its
/// committed capacity and reports live occupancy after each GC, so the
/// manager can answer "how much memory does this executor really have
/// left" across both planes.
///
/// Concurrency contract (mirrors jvm::Heap): every charge, reservation and
/// eviction decision happens on the executor's single mutator thread and
/// depends only on bytes charged so far on that thread — this is what
/// keeps parallel runs bit-identical to sequential ones. The counters are
/// relaxed atomics only so the driver may read metrics cross-thread after
/// a stage barrier.
class ExecutorMemoryManager {
 public:
  ExecutorMemoryManager(uint64_t total_bytes, double storage_fraction);

  ExecutorMemoryManager(const ExecutorMemoryManager&) = delete;
  ExecutorMemoryManager& operator=(const ExecutorMemoryManager&) = delete;

  // -- Storage eviction -----------------------------------------------------

  /// First stage of every eviction: demote heap blocks into the
  /// serialized off-heap tier (keeps the data resident, frees heap bytes
  /// and the heap-vs-serialized size delta). Falls through to kSpill
  /// (swap to disk) only for what demotion could not shed. With the
  /// off-heap tier disabled the demote stage is a no-op and the manager
  /// behaves exactly like the old direct LRU-to-disk path.
  enum class EvictStage : uint8_t { kDemote, kSpill };

  /// Sheds storage-pool memory: demotes or swaps cached blocks until
  /// roughly `need_bytes` are unpinned, returning the number of blocks
  /// acted on. `for_oom` marks the heap's last-resort OOM ladder (which
  /// may dig below the storage floor and counts as a pressure eviction);
  /// execution-pool borrowing passes false.
  using StorageEvictor = std::function<uint64_t(
      uint64_t need_bytes, EvictStage stage, bool for_oom)>;
  void SetStorageEvictor(StorageEvictor evictor) {
    evictor_ = std::move(evictor);
  }

  /// Heap OOM degradation hook: evicts storage without floor protection —
  /// demote first (moves blocks off the managed heap entirely), spill to
  /// disk only once nothing is left to demote. Returns the number of
  /// blocks demoted or evicted.
  uint64_t EvictStorageForOom(uint64_t need_bytes);

  // -- Reservations (mutator thread) ----------------------------------------

  /// Grants `bytes` from `pool` or returns an empty reservation (counting
  /// the denial). An execution request may first evict storage down to the
  /// floor; a storage request never evicts execution.
  MemoryReservation TryReserve(Pool pool, uint64_t bytes);

  /// Grants `bytes` unconditionally (overcommit allowed). A grant that
  /// found no room — even after permitted eviction — still counts as a
  /// denied reservation, so pressure is visible in metrics while callers
  /// (e.g. the block store) shed the overflow themselves right after.
  MemoryReservation Reserve(Pool pool, uint64_t bytes);

  /// Probes whether the execution pool can take `bytes` more, evicting
  /// storage down to the floor if that is what it takes. Does not charge.
  /// A false return counts as a denied reservation (the sort-spill writer
  /// spills on it).
  bool TryExecutionRoom(uint64_t bytes);

  // -- Page charges (core::PageGroup hook, mutator thread) ------------------

  /// Charges a freshly allocated page's footprint to `pool`. Forced:
  /// pages that found no room overcommit (and count a denial) — the heap's
  /// own OOM ladder is the backstop for real exhaustion.
  void ChargePages(Pool pool, uint64_t bytes);
  void UnchargePages(Pool pool, uint64_t bytes);
  /// Re-tags already-charged page bytes (e.g. a shuffle-built page group
  /// handed to the cache moves execution -> storage).
  void TransferPages(Pool from, Pool to, uint64_t bytes);

  void RegisterPageSource(const PageFootprintSource* source);
  void UnregisterPageSource(const PageFootprintSource* source);

  // -- Managed heap ---------------------------------------------------------

  void RegisterHeapCapacity(uint64_t capacity_bytes) {
    heap_capacity_.store(capacity_bytes, std::memory_order_relaxed);
  }
  void ReportHeapOccupancy(uint64_t used_bytes, uint64_t old_used_bytes) {
    heap_used_.store(used_bytes, std::memory_order_relaxed);
    heap_old_used_.store(old_used_bytes, std::memory_order_relaxed);
  }

  // -- Introspection --------------------------------------------------------

  uint64_t total_bytes() const { return total_; }
  uint64_t storage_floor_bytes() const { return floor_; }
  uint64_t exec_used() const {
    return exec_pages_.load(std::memory_order_relaxed) +
           exec_reserved_.load(std::memory_order_relaxed);
  }
  uint64_t storage_used() const {
    return storage_pages_.load(std::memory_order_relaxed) +
           storage_reserved_.load(std::memory_order_relaxed);
  }
  /// Most the storage pool may hold right now (borrows idle execution).
  uint64_t storage_limit() const {
    uint64_t e = exec_used();
    return e >= total_ ? 0 : total_ - e;
  }
  bool StorageOverLimit() const { return storage_used() > storage_limit(); }
  uint64_t page_bytes() const {
    return exec_pages_.load(std::memory_order_relaxed) +
           storage_pages_.load(std::memory_order_relaxed);
  }
  uint64_t exec_peak() const {
    return exec_peak_.load(std::memory_order_relaxed);
  }
  uint64_t storage_peak() const {
    return storage_peak_.load(std::memory_order_relaxed);
  }
  uint64_t borrowed_peak() const {
    return borrowed_peak_.load(std::memory_order_relaxed);
  }
  uint64_t denied_reservations() const {
    return denied_.load(std::memory_order_relaxed);
  }
  /// Live storage-pool reservation bytes (block-store grants only; page
  /// charges are tracked separately). The block store asserts at every
  /// stage barrier that its per-entry reservations sum to exactly this —
  /// a temporary block that double-charged the pool breaks the identity.
  uint64_t storage_reserved() const {
    return storage_reserved_.load(std::memory_order_relaxed);
  }
  /// Blocks the evictor compacted heap -> off-heap in the demote stage.
  uint64_t demoted_blocks() const {
    return demotions_.load(std::memory_order_relaxed);
  }
  /// Blocks the evictor swapped to disk in the spill stage.
  uint64_t spilled_blocks() const {
    return spills_.load(std::memory_order_relaxed);
  }
  uint64_t heap_capacity_bytes() const {
    return heap_capacity_.load(std::memory_order_relaxed);
  }

  MemoryStats Snapshot() const;

  /// Accounting identity check (stage barriers, tests): the registered
  /// heap capacity matches `heap_capacity_bytes`, and the incrementally
  /// charged page bytes equal the summed footprint of every live
  /// registered page source. Aborts on violation.
  void VerifyAccounting(uint64_t heap_capacity_bytes) const;

 private:
  friend class MemoryReservation;

  /// Makes room for an execution grant of `bytes`, evicting storage down
  /// to the floor if needed. Returns whether the grant now fits.
  bool EnsureExecutionRoom(uint64_t bytes);
  void AddUsed(Pool pool, uint64_t bytes, bool reserved);
  void SubUsed(Pool pool, uint64_t bytes, bool reserved);
  void UpdatePeaks();
  void ReleaseReservation(Pool pool, uint64_t bytes) {
    SubUsed(pool, bytes, /*reserved=*/true);
  }

  const uint64_t total_;
  const uint64_t floor_;

  // Mutated on the mutator thread only; atomics (relaxed) let the driver
  // read metrics cross-thread after the stage barrier.
  std::atomic<uint64_t> exec_pages_{0};
  std::atomic<uint64_t> storage_pages_{0};
  std::atomic<uint64_t> exec_reserved_{0};
  std::atomic<uint64_t> storage_reserved_{0};
  std::atomic<uint64_t> exec_peak_{0};
  std::atomic<uint64_t> storage_peak_{0};
  std::atomic<uint64_t> borrowed_peak_{0};
  std::atomic<uint64_t> denied_{0};
  std::atomic<uint64_t> demotions_{0};
  std::atomic<uint64_t> spills_{0};
  std::atomic<uint64_t> heap_capacity_{0};
  std::atomic<uint64_t> heap_used_{0};
  std::atomic<uint64_t> heap_old_used_{0};

  StorageEvictor evictor_;
  std::vector<const PageFootprintSource*> sources_;
};

}  // namespace deca::memory

#endif  // DECA_MEMORY_MEMORY_MANAGER_H_
