#include "memory/memory_manager.h"

#include <algorithm>

#include "obs/trace.h"

namespace deca::memory {

namespace {

/// Every denial is an instant on the denying task's trace lane; the byte
/// amount and pool are deterministic simulation state.
void RecordDenial(Pool pool, uint64_t bytes) {
  obs::Instant(obs::Cat::kMemory, "deny", static_cast<double>(bytes),
               pool == Pool::kExecution ? 0.0 : 1.0);
}

}  // namespace

const char* PoolName(Pool p) {
  switch (p) {
    case Pool::kExecution:
      return "execution";
    case Pool::kStorage:
      return "storage";
  }
  return "?";
}

void MemoryReservation::Release() {
  if (mgr_ != nullptr && bytes_ > 0) {
    mgr_->ReleaseReservation(pool_, bytes_);
  }
  mgr_ = nullptr;
  bytes_ = 0;
}

ExecutorMemoryManager::ExecutorMemoryManager(uint64_t total_bytes,
                                             double storage_fraction)
    : total_(total_bytes),
      floor_(static_cast<uint64_t>(static_cast<double>(total_bytes) *
                                   storage_fraction)) {
  DECA_CHECK_GE(storage_fraction, 0.0);
  DECA_CHECK_LE(storage_fraction, 1.0);
}

uint64_t ExecutorMemoryManager::EvictStorageForOom(uint64_t need_bytes) {
  if (!evictor_) return 0;
  // Stage 1: demote heap blocks into the serialized off-heap tier. That
  // alone unpins managed memory (the data leaves the heap), so the OOM
  // ladder's follow-up collection can already make progress; the ladder
  // calls back in if the retry still fails, and only once nothing is
  // left to demote does stage 2 swap blocks out to disk.
  uint64_t demoted = evictor_(need_bytes, EvictStage::kDemote,
                              /*for_oom=*/true);
  if (demoted > 0) {
    demotions_.fetch_add(demoted, std::memory_order_relaxed);
    return demoted;
  }
  uint64_t spilled = evictor_(need_bytes, EvictStage::kSpill,
                              /*for_oom=*/true);
  spills_.fetch_add(spilled, std::memory_order_relaxed);
  return spilled;
}

bool ExecutorMemoryManager::EnsureExecutionRoom(uint64_t bytes) {
  uint64_t s = storage_used();
  uint64_t committed = exec_used() + s;
  uint64_t free = committed < total_ ? total_ - committed : 0;
  if (bytes <= free) return true;
  // Borrowed storage memory can be reclaimed down to the floor: ask the
  // evictor to shed the shortfall (what the request needs beyond the
  // currently free bytes). A request the floor cannot accommodate fails
  // without evicting anything.
  uint64_t evictable = s > floor_ ? s - floor_ : 0;
  uint64_t shortfall = bytes - free;
  if (shortfall > evictable || !evictor_) return false;
  // Stage 1 (demote) shrinks the pool by the heap-vs-serialized size
  // delta while keeping blocks resident; stage 2 (spill) sheds whatever
  // is still short after compaction. With the off-heap tier disabled the
  // demote call is a no-op and this is the old single-stage path.
  uint64_t demoted = evictor_(shortfall, EvictStage::kDemote,
                              /*for_oom=*/false);
  demotions_.fetch_add(demoted, std::memory_order_relaxed);
  uint64_t committed_now = exec_used() + storage_used();
  uint64_t free_now = committed_now < total_ ? total_ - committed_now : 0;
  if (bytes > free_now) {
    uint64_t spilled = evictor_(bytes - free_now, EvictStage::kSpill,
                                /*for_oom=*/false);
    spills_.fetch_add(spilled, std::memory_order_relaxed);
  }
  uint64_t now = exec_used() + storage_used();
  return now < total_ && bytes <= total_ - now;
}

MemoryReservation ExecutorMemoryManager::TryReserve(Pool pool,
                                                    uint64_t bytes) {
  bool fits = pool == Pool::kExecution
                  ? EnsureExecutionRoom(bytes)
                  : storage_used() + bytes <= storage_limit();
  if (!fits) {
    denied_.fetch_add(1, std::memory_order_relaxed);
    RecordDenial(pool, bytes);
    return {};
  }
  AddUsed(pool, bytes, /*reserved=*/true);
  return MemoryReservation(this, pool, bytes);
}

MemoryReservation ExecutorMemoryManager::Reserve(Pool pool, uint64_t bytes) {
  bool fits = pool == Pool::kExecution
                  ? EnsureExecutionRoom(bytes)
                  : storage_used() + bytes <= storage_limit();
  if (!fits) {
    denied_.fetch_add(1, std::memory_order_relaxed);
    RecordDenial(pool, bytes);
  }
  AddUsed(pool, bytes, /*reserved=*/true);
  return MemoryReservation(this, pool, bytes);
}

bool ExecutorMemoryManager::TryExecutionRoom(uint64_t bytes) {
  if (EnsureExecutionRoom(bytes)) return true;
  denied_.fetch_add(1, std::memory_order_relaxed);
  RecordDenial(Pool::kExecution, bytes);
  return false;
}

void ExecutorMemoryManager::ChargePages(Pool pool, uint64_t bytes) {
  if (pool == Pool::kExecution && !EnsureExecutionRoom(bytes)) {
    denied_.fetch_add(1, std::memory_order_relaxed);
    RecordDenial(pool, bytes);
  }
  AddUsed(pool, bytes, /*reserved=*/false);
}

void ExecutorMemoryManager::UnchargePages(Pool pool, uint64_t bytes) {
  SubUsed(pool, bytes, /*reserved=*/false);
}

void ExecutorMemoryManager::TransferPages(Pool from, Pool to,
                                          uint64_t bytes) {
  if (from == to || bytes == 0) return;
  SubUsed(from, bytes, /*reserved=*/false);
  AddUsed(to, bytes, /*reserved=*/false);
}

void ExecutorMemoryManager::RegisterPageSource(
    const PageFootprintSource* source) {
  sources_.push_back(source);
}

void ExecutorMemoryManager::UnregisterPageSource(
    const PageFootprintSource* source) {
  auto it = std::find(sources_.begin(), sources_.end(), source);
  DECA_CHECK(it != sources_.end());
  sources_.erase(it);
}

void ExecutorMemoryManager::AddUsed(Pool pool, uint64_t bytes,
                                    bool reserved) {
  std::atomic<uint64_t>& counter =
      pool == Pool::kExecution
          ? (reserved ? exec_reserved_ : exec_pages_)
          : (reserved ? storage_reserved_ : storage_pages_);
  counter.fetch_add(bytes, std::memory_order_relaxed);
  UpdatePeaks();
}

void ExecutorMemoryManager::SubUsed(Pool pool, uint64_t bytes,
                                    bool reserved) {
  std::atomic<uint64_t>& counter =
      pool == Pool::kExecution
          ? (reserved ? exec_reserved_ : exec_pages_)
          : (reserved ? storage_reserved_ : storage_pages_);
  DECA_CHECK_GE(counter.load(std::memory_order_relaxed), bytes)
      << "uncharging more " << PoolName(pool) << " bytes than charged";
  counter.fetch_sub(bytes, std::memory_order_relaxed);
}

void ExecutorMemoryManager::UpdatePeaks() {
  uint64_t e = exec_used();
  uint64_t s = storage_used();
  if (e > exec_peak_.load(std::memory_order_relaxed)) {
    exec_peak_.store(e, std::memory_order_relaxed);
  }
  if (s > storage_peak_.load(std::memory_order_relaxed)) {
    storage_peak_.store(s, std::memory_order_relaxed);
  }
  // Bytes currently held across the pool split: execution reaching into
  // the storage region plus storage reaching into the execution region.
  uint64_t exec_region = total_ - floor_;
  uint64_t borrowed =
      (e > exec_region ? e - exec_region : 0) + (s > floor_ ? s - floor_ : 0);
  if (borrowed > borrowed_peak_.load(std::memory_order_relaxed)) {
    borrowed_peak_.store(borrowed, std::memory_order_relaxed);
  }
}

MemoryStats ExecutorMemoryManager::Snapshot() const {
  MemoryStats s;
  s.total_bytes = total_;
  s.storage_floor_bytes = floor_;
  s.exec_used = exec_used();
  s.exec_peak = exec_peak();
  s.storage_used = storage_used();
  s.storage_peak = storage_peak();
  s.borrowed_peak = borrowed_peak();
  s.denied_reservations = denied_reservations();
  s.storage_reserved = storage_reserved();
  s.demoted_blocks = demoted_blocks();
  s.spilled_blocks = spilled_blocks();
  s.page_bytes = page_bytes();
  s.heap_capacity = heap_capacity_.load(std::memory_order_relaxed);
  s.heap_used = heap_used_.load(std::memory_order_relaxed);
  s.heap_old_used = heap_old_used_.load(std::memory_order_relaxed);
  return s;
}

void ExecutorMemoryManager::VerifyAccounting(
    uint64_t heap_capacity_bytes) const {
  DECA_CHECK_EQ(heap_capacity_.load(std::memory_order_relaxed),
                heap_capacity_bytes)
      << "registered heap capacity diverged from the live heap";
  uint64_t summed = 0;
  for (const auto* s : sources_) summed += s->footprint_bytes();
  DECA_CHECK_EQ(page_bytes(), summed)
      << "incremental page charges diverged from live page-group footprints";
  DECA_CHECK_GE(exec_peak(), exec_used());
  DECA_CHECK_GE(storage_peak(), storage_used());
}

}  // namespace deca::memory
