#ifndef DECA_CLUSTER_CLUSTER_MANAGER_H_
#define DECA_CLUSTER_CLUSTER_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <sys/types.h>
#include <thread>
#include <vector>

#include "cluster/job_spec.h"
#include "net/control.h"
#include "spark/dist.h"

namespace deca::cluster {

/// Driver-side control plane: spawns one deca_executord per executor
/// (fork/exec), completes the registration handshake, dispatches task
/// envelopes and stage barriers over RPC, and watches liveness with a
/// heartbeat monitor thread. A daemon that misses
/// `heartbeat_miss_threshold` consecutive pings gets
/// `reconnect_probes` exponential-backoff probes on a fresh connection
/// before being declared dead (SIGKILLed for certainty, then reaped).
///
/// Failure semantics: dispatch RPC failures surface as
/// fault::ExecutorLostError so the stage's partial results are
/// quarantined, never merged; stage barriers and registration failures
/// are job failures. Respawned daemons are fast-forwarded through the
/// program log (every stage barrier replayed in order), then the
/// SparkContext replays lost lineage on top.
class ClusterManager : public spark::DistDriver {
 public:
  /// `config.runtime` is ignored (the manager serves the driver role
  /// that fills it); everything else ships to the daemons verbatim.
  ClusterManager(const spark::SparkConfig& config, std::string workload,
                 std::vector<uint8_t> params);
  ~ClusterManager() override;

  ClusterManager(const ClusterManager&) = delete;
  ClusterManager& operator=(const ClusterManager&) = delete;

  /// Spawns and registers every daemon, broadcasts the data-plane peer
  /// table, and starts the heartbeat monitor. Throws on registration
  /// timeout (e.g. the executord binary was not found by any probe
  /// path — set DECA_EXECUTORD or cluster.executord_path).
  void Start();

  /// Orders every live daemon down, reaps all children, joins the
  /// monitor. Idempotent; also run by the destructor.
  void Shutdown();

  // spark::DistDriver:
  exec::RemoteTaskOutcome RunTask(
      int executor, const exec::RemoteTaskEnvelope& env) override;
  std::vector<spark::ExecutorSnapshot> StageDone(
      int stage, bool collect,
      const std::vector<std::vector<uint8_t>>& blobs) override;
  void KillExecutor(int executor) override;
  void RecoverExecutor(int executor) override;
  void NoteStageQuarantine() override;
  spark::ClusterCounters counters() const override;

 private:
  struct Daemon {
    // Registration state, guarded by reg_mu_.
    pid_t pid = -1;
    int generation = 0;
    uint16_t control_port = 0;
    uint16_t data_port = 0;
    bool ready = false;

    // Liveness state, guarded by monitor_mu_.
    bool dead = false;
    bool reaped = false;

    // Monitor-thread-only state.
    int misses = 0;
    int suppress_left = 0;  // test hook: pretend the next N pings were lost

    // One client per plane so heartbeats never queue behind a running
    // task's dispatch round trip.
    std::unique_ptr<net::RpcClient> dispatch;
    std::unique_ptr<net::RpcClient> heartbeat;
    std::mutex dispatch_mu;  // serializes dispatch-client use
  };

  struct LogEntry {
    int stage = -1;
    bool collect = false;
    std::vector<std::vector<uint8_t>> blobs;
  };

  std::vector<uint8_t> HandleRegistration(const std::vector<uint8_t>& frame);
  std::string FindExecutord() const;
  void Spawn(int executor);
  void WaitReady(int executor);
  void CreateClients(int executor);
  void BroadcastPeers();
  /// One dispatch round trip; maps transport failures to
  /// fault::ExecutorLostError(executor, stage).
  std::vector<uint8_t> SendOnDispatch(int executor, int stage,
                                      const std::vector<uint8_t>& frame);
  spark::ExecutorSnapshot SendStageDone(int executor, const LogEntry& entry);

  void MonitorLoop();
  bool IsDead(Daemon* d);
  bool PingOnce(net::RpcClient* client, int deadline_ms);
  void DeclareDead(int executor, Daemon* d);
  void WaitDead(int executor);

  spark::SparkConfig config_;  // runtime member cleared
  std::string workload_;
  std::vector<uint8_t> params_;

  std::unique_ptr<net::RpcServer> reg_server_;
  std::vector<std::unique_ptr<Daemon>> daemons_;

  std::mutex reg_mu_;
  std::condition_variable reg_cv_;

  std::mutex monitor_mu_;
  std::condition_variable monitor_cv_;
  bool stopping_ = false;
  std::thread monitor_;

  /// Every stage barrier in program order, for fast-forwarding
  /// respawned daemons (driver thread only).
  std::vector<LogEntry> log_;

  bool started_ = false;
  bool shut_down_ = false;

  std::atomic<uint64_t> c_spawned_{0};
  std::atomic<uint64_t> c_killed_{0};
  std::atomic<uint64_t> c_respawned_{0};
  std::atomic<uint64_t> c_declared_dead_{0};
  std::atomic<uint64_t> c_heartbeats_sent_{0};
  std::atomic<uint64_t> c_heartbeat_misses_{0};
  std::atomic<uint64_t> c_reconnect_probes_{0};
  std::atomic<uint64_t> c_quarantines_{0};
  std::atomic<uint64_t> c_rpc_messages_{0};
};

}  // namespace deca::cluster

#endif  // DECA_CLUSTER_CLUSTER_MANAGER_H_
