#ifndef DECA_CLUSTER_JOB_SPEC_H_
#define DECA_CLUSTER_JOB_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "spark/config.h"

namespace deca::cluster {

/// Everything a freshly exec'd deca_executord needs to reconstruct the
/// driver's job: the full engine configuration, the registered workload
/// to run, and that workload's encoded parameters. Shipped as the kSpec
/// reply of the registration handshake. The SPMD contract depends on
/// this codec being lossless for every field that influences results,
/// GC decisions, or fault-injection decisions — a missed field here
/// shows up as an equivalence-matrix digest mismatch, not a crash.
struct JobSpec {
  spark::SparkConfig config;  // runtime member is never serialized
  std::string workload;
  std::vector<uint8_t> params;
};

/// Registration handshake, daemon -> driver (reply: kSpec + JobSpec).
struct HelloMsg {
  int32_t executor = -1;
  int32_t generation = 0;
  int64_t pid = -1;
  uint16_t control_port = 0;
};

/// Second handshake round trip, daemon -> driver once its data-plane
/// mesh endpoint is listening (reply: kReadyAck).
struct ReadyMsg {
  int32_t executor = -1;
  int32_t generation = 0;
  uint16_t data_port = 0;
};

void EncodeSparkConfig(const spark::SparkConfig& config, ByteWriter* w);
spark::SparkConfig DecodeSparkConfig(ByteReader* r);

void EncodeJobSpec(const JobSpec& spec, ByteWriter* w);
JobSpec DecodeJobSpec(ByteReader* r);

void EncodeHello(const HelloMsg& msg, ByteWriter* w);
HelloMsg DecodeHello(ByteReader* r);

void EncodeReady(const ReadyMsg& msg, ByteWriter* w);
ReadyMsg DecodeReady(ByteReader* r);

}  // namespace deca::cluster

#endif  // DECA_CLUSTER_JOB_SPEC_H_
