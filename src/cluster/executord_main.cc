// deca_executord: one executor daemon of a multi-process run. Spawned
// by the driver's ClusterManager (fork/exec), registers over the
// control plane, then runs the same SPMD workload program as the
// driver with the worker role wired in.

#include <exception>

#include "cluster/daemon_runtime.h"
#include "common/logging.h"
#include "workloads/dist_entry.h"

int main(int argc, char** argv) {
  // Explicit registration: the workloads live in a static library and
  // self-registering static initializers would be dropped by the linker.
  deca::workloads::RegisterDistWorkloads();
  try {
    return deca::cluster::DaemonMain(argc, argv);
  } catch (const std::exception& e) {
    DECA_LOG(Error) << "executord: " << e.what();
    return 1;
  }
}
