#ifndef DECA_CLUSTER_SCOPED_JOB_H_
#define DECA_CLUSTER_SCOPED_JOB_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "spark/config.h"

namespace deca::cluster {

class ClusterManager;

/// RAII wiring for one run of a shared SPMD workload program. Construct
/// it right before the SparkContext, on the config the context will use:
///
///   - inside a deca_executord process it applies the worker-side
///     wiring (DaemonRuntime::WireConfig) — `workload`/`params` are
///     ignored there, the daemon already has them from its JobSpec;
///   - in the driver process with dist_mode == kProcess it spawns the
///     cluster (ClusterManager::Start) and wires the driver role; the
///     destructor tears every daemon down;
///   - otherwise (in-process mode) it is a no-op.
class ScopedJob {
 public:
  ScopedJob(spark::SparkConfig* config, const std::string& workload,
            std::vector<uint8_t> params);
  ~ScopedJob();

  ScopedJob(const ScopedJob&) = delete;
  ScopedJob& operator=(const ScopedJob&) = delete;

  /// True when this process is the driver of a multi-process run.
  bool driver() const { return manager_ != nullptr; }

 private:
  std::unique_ptr<ClusterManager> manager_;
};

}  // namespace deca::cluster

#endif  // DECA_CLUSTER_SCOPED_JOB_H_
