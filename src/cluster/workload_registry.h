#ifndef DECA_CLUSTER_WORKLOAD_REGISTRY_H_
#define DECA_CLUSTER_WORKLOAD_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "spark/config.h"

namespace deca::cluster {

/// A daemon-side workload entry point. `base` is the driver's decoded
/// SparkConfig (the daemon's runtime wiring is applied by ScopedJob once
/// the workload constructs it); `params` is the workload's own encoded
/// parameter blob from the JobSpec. The function runs the exact same
/// SPMD program the driver runs — C++ closures cannot travel over RPC,
/// so every process executes the shared program text and the roles
/// diverge only inside SparkContext::RunStage.
using WorkloadFn = std::function<void(const spark::SparkConfig& base,
                                      const std::vector<uint8_t>& params)>;

/// Registers `fn` under `name`. Called from an explicit registration
/// hook (workloads::RegisterDistWorkloads) rather than static
/// initializers: the workload objects live in a static library and the
/// linker would otherwise drop their translation units.
void RegisterWorkload(const std::string& name, WorkloadFn fn);

/// Returns the registered entry point, or nullptr.
const WorkloadFn* FindWorkload(const std::string& name);

}  // namespace deca::cluster

#endif  // DECA_CLUSTER_WORKLOAD_REGISTRY_H_
