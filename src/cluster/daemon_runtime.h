#ifndef DECA_CLUSTER_DAEMON_RUNTIME_H_
#define DECA_CLUSTER_DAEMON_RUNTIME_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <vector>

#include "cluster/job_spec.h"
#include "net/control.h"
#include "net/mesh_transport.h"
#include "spark/dist.h"

namespace deca::cluster {

/// One deca_executord process: hosts exactly one executor (heap, page
/// groups, block store, block server) and serves the driver's control
/// plane. The control RpcServer answers heartbeats and peer updates
/// inline on connection threads — liveness works even mid-task — while
/// LaunchTask / StageDone / Shutdown are queued to the main thread,
/// which runs the same SPMD workload program as the driver and pulls
/// commands from inside SparkContext's serve loop.
class DaemonRuntime : public spark::DistWorker {
 public:
  /// The process's runtime while DaemonMain is live, else nullptr. The
  /// shared workload program uses this to tell worker from driver (and
  /// the probe workload to SIGKILL itself on its scripted generation).
  static DaemonRuntime* Current();

  DaemonRuntime(uint16_t driver_port, int executor, int generation);
  ~DaemonRuntime() override;

  DaemonRuntime(const DaemonRuntime&) = delete;
  DaemonRuntime& operator=(const DaemonRuntime&) = delete;

  /// Registers with the driver (Hello -> Spec, Ready -> ReadyAck), builds
  /// the data-plane mesh, runs the registered workload program, then
  /// serves until the driver orders shutdown. Returns the exit code.
  int Run();

  int executor() const { return executor_; }
  /// 0 for the first spawn, +1 per respawn. The probe workload keys its
  /// scripted self-kill on this so a replacement daemon survives.
  int generation() const { return generation_; }

  /// Worker-side wiring applied to the workload's config copy by
  /// cluster::ScopedJob: forces the sequential driver loop and disables
  /// tracing (the daemon's stats travel via stage-ack snapshots), then
  /// points the runtime seam at this object and the mesh.
  void WireConfig(spark::SparkConfig* config);

  // spark::DistWorker:
  Command NextCommand() override;
  void Reply(const exec::RemoteTaskOutcome& outcome) override;
  void StageAck(const spark::ExecutorSnapshot& snapshot) override;

 private:
  struct Pending {
    Command cmd;
    std::promise<std::vector<uint8_t>> reply;  // framed response
    bool wants_reply = false;
  };

  std::vector<uint8_t> HandleControl(const std::vector<uint8_t>& frame);
  std::vector<uint8_t> EnqueueAndWait(std::unique_ptr<Pending> pending);
  /// Drains commands after the workload program returned; exits on
  /// kShutdown.
  void WaitShutdown();

  uint16_t driver_port_;
  int executor_;
  int generation_;
  JobSpec spec_;

  std::unique_ptr<net::RpcServer> control_;
  std::unique_ptr<net::NetStats> net_stats_;
  /// Guards mesh_ against the control threads (kUpdatePeers) racing its
  /// construction on the main thread.
  std::mutex mesh_mu_;
  std::unique_ptr<net::MeshTransport> mesh_;

  std::mutex qmu_;
  std::condition_variable qcv_;
  std::deque<std::unique_ptr<Pending>> queue_;
  std::unique_ptr<Pending> current_;
};

/// deca_executord entry point (after workload registration). Flags:
/// --driver-port=N --executor=E --generation=G.
int DaemonMain(int argc, char** argv);

}  // namespace deca::cluster

#endif  // DECA_CLUSTER_DAEMON_RUNTIME_H_
