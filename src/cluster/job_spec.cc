#include "cluster/job_spec.h"

namespace deca::cluster {

void EncodeSparkConfig(const spark::SparkConfig& c, ByteWriter* w) {
  w->WriteVarI64(c.num_executors);
  w->WriteVarI64(c.partitions_per_executor);
  w->WriteVarI64(c.num_worker_threads);

  w->WriteVarU64(c.heap.heap_bytes);
  w->Write<double>(c.heap.young_fraction);
  w->Write<double>(c.heap.survivor_fraction);
  w->WriteVarU64(c.heap.tenure_threshold);
  w->WriteVarU64(c.heap.large_object_bytes);
  w->Write<uint8_t>(static_cast<uint8_t>(c.heap.algorithm));
  w->WriteVarU64(c.heap.g1_region_bytes);
  w->Write<double>(c.heap.g1_ihop);
  w->Write<double>(c.heap.g1_live_threshold);
  w->Write<double>(c.heap.concurrent_pause_share);
  w->Write<double>(c.heap.pause_budget_ms);
  w->WriteVarU64(c.heap.profile_sample_bytes);
  w->WriteVarU64(c.heap.profile_seed);
  w->Write<uint8_t>(static_cast<uint8_t>(c.lifetime_source));

  w->WriteVarU64(c.executor_memory_bytes);
  w->Write<double>(c.memory_fraction);
  w->Write<double>(c.storage_fraction);

  w->Write<uint8_t>(static_cast<uint8_t>(c.cache_level));
  w->Write<uint8_t>(c.deca_shuffle ? 1 : 0);
  w->WriteVarU64(c.deca_page_bytes);

  w->Write<uint8_t>(static_cast<uint8_t>(c.shuffle_transport));
  w->Write<uint8_t>(static_cast<uint8_t>(c.shuffle_wire_codec));
  w->WriteVarU64(c.net_fetch_chunk_bytes);
  w->WriteVarU64(c.net_max_inflight_bytes);
  w->WriteVarI64(c.net_fetch_retries);
  w->WriteVarU64(c.net_latency_us);
  w->WriteVarU64(c.net_bandwidth_mbps);

  w->WriteString(c.spill_dir);
  w->WriteVarI64(c.max_task_failures);

  w->WriteVarU64(c.fault.seed);
  w->Write<double>(c.fault.task_failure_prob);
  w->Write<double>(c.fault.fetch_failure_prob);
  w->Write<double>(c.fault.oom_failure_prob);
  w->WriteVarI64(c.fault.crash_wipe_stage);
  w->WriteVarI64(c.fault.crash_wipe_executor);

  w->Write<uint8_t>(static_cast<uint8_t>(c.dist_mode));
  w->WriteVarU64(c.cluster.heartbeat_interval_ms);
  w->WriteVarI64(c.cluster.heartbeat_miss_threshold);
  w->WriteVarI64(c.cluster.reconnect_probes);
  w->WriteVarU64(c.cluster.retry_backoff_base_ms);
  w->WriteVarU64(c.cluster.rpc_deadline_ms);
  w->WriteVarI64(c.cluster.connect_attempts);
  w->WriteString(c.cluster.executord_path);
  w->WriteVarI64(c.cluster.test_suppress_heartbeats_executor);
  w->WriteVarI64(c.cluster.test_suppress_heartbeats_count);

  w->Write<uint8_t>(c.trace_enabled ? 1 : 0);
  w->WriteVarU64(c.trace_ring_capacity);

  w->Write<uint8_t>(c.arena.enabled ? 1 : 0);
  w->WriteVarU64(c.arena.chunk_bytes);
  w->Write<uint8_t>(static_cast<uint8_t>(c.arena.huge_pages));
  w->Write<uint8_t>(static_cast<uint8_t>(c.arena.numa_policy));
}

spark::SparkConfig DecodeSparkConfig(ByteReader* r) {
  spark::SparkConfig c;
  c.num_executors = static_cast<int>(r->ReadVarI64());
  c.partitions_per_executor = static_cast<int>(r->ReadVarI64());
  c.num_worker_threads = static_cast<int>(r->ReadVarI64());

  c.heap.heap_bytes = static_cast<size_t>(r->ReadVarU64());
  c.heap.young_fraction = r->Read<double>();
  c.heap.survivor_fraction = r->Read<double>();
  c.heap.tenure_threshold = static_cast<uint32_t>(r->ReadVarU64());
  c.heap.large_object_bytes = static_cast<size_t>(r->ReadVarU64());
  c.heap.algorithm = static_cast<jvm::GcAlgorithm>(r->Read<uint8_t>());
  c.heap.g1_region_bytes = static_cast<size_t>(r->ReadVarU64());
  c.heap.g1_ihop = r->Read<double>();
  c.heap.g1_live_threshold = r->Read<double>();
  c.heap.concurrent_pause_share = r->Read<double>();
  c.heap.pause_budget_ms = r->Read<double>();
  c.heap.profile_sample_bytes = static_cast<size_t>(r->ReadVarU64());
  c.heap.profile_seed = r->ReadVarU64();
  c.lifetime_source = static_cast<spark::LifetimeSource>(r->Read<uint8_t>());

  c.executor_memory_bytes = static_cast<size_t>(r->ReadVarU64());
  c.memory_fraction = r->Read<double>();
  c.storage_fraction = r->Read<double>();

  c.cache_level = static_cast<spark::StorageLevel>(r->Read<uint8_t>());
  c.deca_shuffle = r->Read<uint8_t>() != 0;
  c.deca_page_bytes = static_cast<uint32_t>(r->ReadVarU64());

  c.shuffle_transport = static_cast<spark::ShuffleTransport>(r->Read<uint8_t>());
  c.shuffle_wire_codec = static_cast<spark::ShuffleWireCodec>(r->Read<uint8_t>());
  c.net_fetch_chunk_bytes = static_cast<uint32_t>(r->ReadVarU64());
  c.net_max_inflight_bytes = static_cast<uint32_t>(r->ReadVarU64());
  c.net_fetch_retries = static_cast<int>(r->ReadVarI64());
  c.net_latency_us = r->ReadVarU64();
  c.net_bandwidth_mbps = r->ReadVarU64();

  c.spill_dir = r->ReadString();
  c.max_task_failures = static_cast<int>(r->ReadVarI64());

  c.fault.seed = r->ReadVarU64();
  c.fault.task_failure_prob = r->Read<double>();
  c.fault.fetch_failure_prob = r->Read<double>();
  c.fault.oom_failure_prob = r->Read<double>();
  c.fault.crash_wipe_stage = static_cast<int>(r->ReadVarI64());
  c.fault.crash_wipe_executor = static_cast<int>(r->ReadVarI64());

  c.dist_mode = static_cast<spark::DistMode>(r->Read<uint8_t>());
  c.cluster.heartbeat_interval_ms = static_cast<int>(r->ReadVarU64());
  c.cluster.heartbeat_miss_threshold = static_cast<int>(r->ReadVarI64());
  c.cluster.reconnect_probes = static_cast<int>(r->ReadVarI64());
  c.cluster.retry_backoff_base_ms = static_cast<int>(r->ReadVarU64());
  c.cluster.rpc_deadline_ms = static_cast<int>(r->ReadVarU64());
  c.cluster.connect_attempts = static_cast<int>(r->ReadVarI64());
  c.cluster.executord_path = r->ReadString();
  c.cluster.test_suppress_heartbeats_executor =
      static_cast<int>(r->ReadVarI64());
  c.cluster.test_suppress_heartbeats_count = static_cast<int>(r->ReadVarI64());

  c.trace_enabled = r->Read<uint8_t>() != 0;
  c.trace_ring_capacity = static_cast<uint32_t>(r->ReadVarU64());

  c.arena.enabled = r->Read<uint8_t>() != 0;
  c.arena.chunk_bytes = static_cast<size_t>(r->ReadVarU64());
  c.arena.huge_pages = static_cast<alloc::HugePageMode>(r->Read<uint8_t>());
  c.arena.numa_policy = static_cast<alloc::NumaPolicy>(r->Read<uint8_t>());
  return c;
}

void EncodeJobSpec(const JobSpec& spec, ByteWriter* w) {
  EncodeSparkConfig(spec.config, w);
  w->WriteString(spec.workload);
  w->WriteVarU64(spec.params.size());
  w->WriteBytes(spec.params.data(), spec.params.size());
}

JobSpec DecodeJobSpec(ByteReader* r) {
  JobSpec spec;
  spec.config = DecodeSparkConfig(r);
  spec.workload = r->ReadString();
  uint64_t n = r->ReadVarU64();
  spec.params.resize(static_cast<size_t>(n));
  r->ReadBytes(spec.params.data(), spec.params.size());
  return spec;
}

void EncodeHello(const HelloMsg& msg, ByteWriter* w) {
  w->WriteVarI64(msg.executor);
  w->WriteVarI64(msg.generation);
  w->WriteVarI64(msg.pid);
  w->WriteVarU64(msg.control_port);
}

HelloMsg DecodeHello(ByteReader* r) {
  HelloMsg msg;
  msg.executor = static_cast<int32_t>(r->ReadVarI64());
  msg.generation = static_cast<int32_t>(r->ReadVarI64());
  msg.pid = r->ReadVarI64();
  msg.control_port = static_cast<uint16_t>(r->ReadVarU64());
  return msg;
}

void EncodeReady(const ReadyMsg& msg, ByteWriter* w) {
  w->WriteVarI64(msg.executor);
  w->WriteVarI64(msg.generation);
  w->WriteVarU64(msg.data_port);
}

ReadyMsg DecodeReady(ByteReader* r) {
  ReadyMsg msg;
  msg.executor = static_cast<int32_t>(r->ReadVarI64());
  msg.generation = static_cast<int32_t>(r->ReadVarI64());
  msg.data_port = static_cast<uint16_t>(r->ReadVarU64());
  return msg;
}

}  // namespace deca::cluster
