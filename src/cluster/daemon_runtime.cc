#include "cluster/daemon_runtime.h"

#include <cstdlib>
#include <cstring>
#include <string>
#include <unistd.h>
#include <utility>

#include "cluster/workload_registry.h"
#include "common/logging.h"
#include "net/wire.h"

namespace deca::cluster {

namespace {

DaemonRuntime* g_current = nullptr;

std::vector<uint8_t> AckFrame(net::CtrlType type) {
  ByteWriter w;
  w.Write<uint8_t>(static_cast<uint8_t>(type));
  return net::FrameMessage(w);
}

}  // namespace

DaemonRuntime* DaemonRuntime::Current() { return g_current; }

DaemonRuntime::DaemonRuntime(uint16_t driver_port, int executor,
                             int generation)
    : driver_port_(driver_port), executor_(executor), generation_(generation) {
  DECA_CHECK(g_current == nullptr) << "one DaemonRuntime per process";
  g_current = this;
}

DaemonRuntime::~DaemonRuntime() { g_current = nullptr; }

int DaemonRuntime::Run() {
  control_ = std::make_unique<net::RpcServer>(
      [this](const std::vector<uint8_t>& frame) {
        return HandleControl(frame);
      });

  // Registration handshake on the driver's registration port. The Spec
  // reply carries the whole job; the daemon does not trust its argv for
  // anything but identity.
  net::RpcClient reg(driver_port_, /*connect_attempts=*/25,
                     /*backoff_base_ms=*/20);
  {
    HelloMsg hello;
    hello.executor = executor_;
    hello.generation = generation_;
    hello.pid = static_cast<int64_t>(getpid());
    hello.control_port = control_->port();
    ByteWriter w;
    w.Write<uint8_t>(static_cast<uint8_t>(net::CtrlType::kHello));
    EncodeHello(hello, &w);
    std::vector<uint8_t> resp = reg.Call(net::FrameMessage(w), 20000);
    ByteReader r(nullptr, 0);
    DECA_CHECK(net::UnframeMessage(resp, &r));
    DECA_CHECK_EQ(r.Read<uint8_t>(),
                  static_cast<uint8_t>(net::CtrlType::kSpec));
    spec_ = DecodeJobSpec(&r);
  }
  DECA_CHECK(executor_ >= 0 && executor_ < spec_.config.num_executors);

  // Data plane: one mesh endpoint for this executor's block server. Peer
  // ports arrive later via kUpdatePeers once every daemon is up.
  net_stats_ = std::make_unique<net::NetStats>();
  net::MeshOptions opts;
  opts.connect_attempts = spec_.config.cluster.connect_attempts;
  opts.backoff_base_ms = spec_.config.cluster.retry_backoff_base_ms;
  opts.deadline_ms = spec_.config.cluster.rpc_deadline_ms;
  {
    std::lock_guard<std::mutex> lock(mesh_mu_);
    mesh_ = std::make_unique<net::MeshTransport>(
        spec_.config.num_executors, executor_, opts, net_stats_.get());
  }

  {
    ReadyMsg ready;
    ready.executor = executor_;
    ready.generation = generation_;
    ready.data_port = mesh_->local_port();
    ByteWriter w;
    w.Write<uint8_t>(static_cast<uint8_t>(net::CtrlType::kReady));
    EncodeReady(ready, &w);
    std::vector<uint8_t> resp = reg.Call(net::FrameMessage(w), 20000);
    ByteReader r(nullptr, 0);
    DECA_CHECK(net::UnframeMessage(resp, &r));
    DECA_CHECK_EQ(r.Read<uint8_t>(),
                  static_cast<uint8_t>(net::CtrlType::kReadyAck));
  }
  reg.Close();

  const WorkloadFn* fn = FindWorkload(spec_.workload);
  DECA_CHECK(fn != nullptr) << "unregistered workload: " << spec_.workload;
  try {
    // Same program text as the driver; SparkContext diverges per role.
    (*fn)(spec_.config, spec_.params);
    WaitShutdown();
  } catch (const spark::WorkerShutdown&) {
    // Driver tore the job down mid-stage; unwind ran every destructor.
  }
  return 0;
}

void DaemonRuntime::WireConfig(spark::SparkConfig* config) {
  config->num_worker_threads = 0;
  config->trace_enabled = false;
  config->runtime.role = spark::DistRole::kWorker;
  config->runtime.worker = this;
  config->runtime.transport = mesh_.get();
  config->runtime.net_stats = net_stats_.get();
  config->runtime.my_executor = executor_;
}

std::vector<uint8_t> DaemonRuntime::HandleControl(
    const std::vector<uint8_t>& frame) {
  ByteReader r(nullptr, 0);
  DECA_CHECK(net::UnframeMessage(frame, &r)) << "malformed control frame";
  auto type = static_cast<net::CtrlType>(r.Read<uint8_t>());
  switch (type) {
    case net::CtrlType::kHeartbeat:
      // Answered on this connection thread, even mid-task.
      return AckFrame(net::CtrlType::kHeartbeatAck);
    case net::CtrlType::kUpdatePeers: {
      uint64_t n = r.ReadVarU64();
      std::vector<std::pair<int, uint16_t>> peers;
      peers.reserve(static_cast<size_t>(n));
      for (uint64_t i = 0; i < n; ++i) {
        int endpoint = static_cast<int>(r.ReadVarI64());
        auto port = static_cast<uint16_t>(r.ReadVarU64());
        peers.emplace_back(endpoint, port);
      }
      {
        std::lock_guard<std::mutex> lock(mesh_mu_);
        DECA_CHECK(mesh_ != nullptr) << "peers before Ready";
        mesh_->UpdatePeers(peers);
      }
      return AckFrame(net::CtrlType::kPeersAck);
    }
    case net::CtrlType::kLaunchTask: {
      auto pending = std::make_unique<Pending>();
      pending->cmd.kind = Command::Kind::kTask;
      pending->cmd.env = exec::RemoteTaskEnvelope::Decode(&r);
      pending->wants_reply = true;
      return EnqueueAndWait(std::move(pending));
    }
    case net::CtrlType::kStageDone: {
      auto pending = std::make_unique<Pending>();
      pending->cmd.kind = Command::Kind::kStageDone;
      pending->cmd.stage = static_cast<int>(r.ReadVarI64());
      uint64_t n = r.ReadVarU64();
      pending->cmd.blobs.reserve(static_cast<size_t>(n));
      for (uint64_t i = 0; i < n; ++i) {
        pending->cmd.blobs.push_back(exec::ReadBlob(&r));
      }
      pending->wants_reply = true;
      return EnqueueAndWait(std::move(pending));
    }
    case net::CtrlType::kShutdown: {
      auto pending = std::make_unique<Pending>();
      pending->cmd.kind = Command::Kind::kShutdown;
      {
        std::lock_guard<std::mutex> lock(qmu_);
        queue_.push_back(std::move(pending));
      }
      qcv_.notify_all();
      // Acked immediately: the driver reaps the process, it does not wait
      // for the main thread to unwind.
      return AckFrame(net::CtrlType::kShutdownAck);
    }
    default:
      DECA_CHECK(false) << "unexpected control type "
                        << static_cast<int>(type);
      return {};
  }
}

std::vector<uint8_t> DaemonRuntime::EnqueueAndWait(
    std::unique_ptr<Pending> pending) {
  std::future<std::vector<uint8_t>> reply = pending->reply.get_future();
  {
    std::lock_guard<std::mutex> lock(qmu_);
    queue_.push_back(std::move(pending));
  }
  qcv_.notify_all();
  return reply.get();
}

spark::DistWorker::Command DaemonRuntime::NextCommand() {
  std::unique_lock<std::mutex> lock(qmu_);
  qcv_.wait(lock, [this] { return !queue_.empty(); });
  DECA_CHECK(current_ == nullptr) << "previous command not replied to";
  current_ = std::move(queue_.front());
  queue_.pop_front();
  if (!current_->wants_reply) {
    Command cmd = current_->cmd;
    current_.reset();
    return cmd;
  }
  return current_->cmd;
}

void DaemonRuntime::Reply(const exec::RemoteTaskOutcome& outcome) {
  DECA_CHECK(current_ != nullptr && current_->wants_reply);
  ByteWriter w;
  w.Write<uint8_t>(static_cast<uint8_t>(net::CtrlType::kTaskResult));
  outcome.Encode(&w);
  current_->reply.set_value(net::FrameMessage(w));
  current_.reset();
}

void DaemonRuntime::StageAck(const spark::ExecutorSnapshot& snapshot) {
  DECA_CHECK(current_ != nullptr && current_->wants_reply);
  ByteWriter w;
  w.Write<uint8_t>(static_cast<uint8_t>(net::CtrlType::kStageAck));
  snapshot.Encode(&w);
  current_->reply.set_value(net::FrameMessage(w));
  current_.reset();
}

void DaemonRuntime::WaitShutdown() {
  for (;;) {
    Command cmd = NextCommand();
    if (cmd.kind == Command::Kind::kShutdown) return;
    DECA_CHECK(false) << "command after job end (kind "
                      << static_cast<int>(cmd.kind) << ")";
  }
}

int DaemonMain(int argc, char** argv) {
  uint16_t driver_port = 0;
  int executor = -1;
  int generation = 0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--driver-port=", 14) == 0) {
      driver_port = static_cast<uint16_t>(std::atoi(arg + 14));
    } else if (std::strncmp(arg, "--executor=", 11) == 0) {
      executor = std::atoi(arg + 11);
    } else if (std::strncmp(arg, "--generation=", 13) == 0) {
      generation = std::atoi(arg + 13);
    }
  }
  DECA_CHECK(driver_port != 0 && executor >= 0)
      << "usage: deca_executord --driver-port=N --executor=E "
         "[--generation=G]";
  DaemonRuntime runtime(driver_port, executor, generation);
  return runtime.Run();
}

}  // namespace deca::cluster
