#include "cluster/workload_registry.h"

#include <map>
#include <mutex>
#include <utility>

namespace deca::cluster {

namespace {

std::mutex& RegistryMu() {
  static std::mutex mu;
  return mu;
}

std::map<std::string, WorkloadFn>& Registry() {
  static std::map<std::string, WorkloadFn> registry;
  return registry;
}

}  // namespace

void RegisterWorkload(const std::string& name, WorkloadFn fn) {
  std::lock_guard<std::mutex> lock(RegistryMu());
  Registry()[name] = std::move(fn);
}

const WorkloadFn* FindWorkload(const std::string& name) {
  std::lock_guard<std::mutex> lock(RegistryMu());
  auto it = Registry().find(name);
  return it == Registry().end() ? nullptr : &it->second;
}

}  // namespace deca::cluster
