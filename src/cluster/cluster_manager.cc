#include "cluster/cluster_manager.h"

#include <algorithm>
#include <chrono>
#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <sys/prctl.h>
#include <sys/wait.h>
#include <unistd.h>
#include <utility>

#include "common/logging.h"
#include "fault/task_failure.h"
#include "net/socket_io.h"
#include "net/wire.h"

namespace deca::cluster {

namespace {

std::vector<uint8_t> HeartbeatFrame() {
  ByteWriter w;
  w.Write<uint8_t>(static_cast<uint8_t>(net::CtrlType::kHeartbeat));
  return net::FrameMessage(w);
}

/// Directory of the running binary, via /proc/self/exe.
std::string SelfDir() {
  char buf[4096];
  ssize_t n = readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return std::string();
  buf[n] = '\0';
  std::string path(buf);
  size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

}  // namespace

ClusterManager::ClusterManager(const spark::SparkConfig& config,
                               std::string workload,
                               std::vector<uint8_t> params)
    : config_(config),
      workload_(std::move(workload)),
      params_(std::move(params)) {
  // The spec codec never ships process-local wiring.
  config_.runtime = spark::ClusterRuntime();
}

ClusterManager::~ClusterManager() { Shutdown(); }

void ClusterManager::Start() {
  DECA_CHECK(!started_);
  started_ = true;
  // The daemon table is fully built before the registration server (and
  // its connection threads) exists: server threads index it freely, and
  // it never grows or shrinks afterwards.
  daemons_.resize(static_cast<size_t>(config_.num_executors));
  for (int e = 0; e < config_.num_executors; ++e) {
    daemons_[static_cast<size_t>(e)] = std::make_unique<Daemon>();
    if (e == config_.cluster.test_suppress_heartbeats_executor) {
      daemons_[static_cast<size_t>(e)]->suppress_left =
          config_.cluster.test_suppress_heartbeats_count;
    }
  }
  reg_server_ = std::make_unique<net::RpcServer>(
      [this](const std::vector<uint8_t>& frame) {
        return HandleRegistration(frame);
      });
  for (int e = 0; e < config_.num_executors; ++e) Spawn(e);
  for (int e = 0; e < config_.num_executors; ++e) WaitReady(e);
  for (int e = 0; e < config_.num_executors; ++e) CreateClients(e);
  BroadcastPeers();
  monitor_ = std::thread([this] { MonitorLoop(); });
}

void ClusterManager::Shutdown() {
  if (!started_ || shut_down_) return;
  shut_down_ = true;
  {
    std::lock_guard<std::mutex> lock(monitor_mu_);
    stopping_ = true;
  }
  monitor_cv_.notify_all();
  if (monitor_.joinable()) monitor_.join();

  ByteWriter w;
  w.Write<uint8_t>(static_cast<uint8_t>(net::CtrlType::kShutdown));
  std::vector<uint8_t> frame = net::FrameMessage(w);
  for (int e = 0; e < config_.num_executors; ++e) {
    Daemon* d = daemons_[static_cast<size_t>(e)].get();
    if (d == nullptr || d->pid < 0) continue;
    if (!d->dead) {
      try {
        SendOnDispatch(e, -1, frame);
      } catch (const std::exception&) {
        // Daemon already gone; the SIGKILL below settles it.
      }
    }
    if (!d->reaped) {
      // Grace period for a clean exit, then the hammer.
      bool exited = false;
      for (int i = 0; i < 200; ++i) {
        if (waitpid(d->pid, nullptr, WNOHANG) == d->pid) {
          exited = true;
          break;
        }
        usleep(10 * 1000);
      }
      if (!exited) {
        kill(d->pid, SIGKILL);
        waitpid(d->pid, nullptr, 0);
      }
      d->reaped = true;
    }
  }
  reg_server_->Stop();
}

std::vector<uint8_t> ClusterManager::HandleRegistration(
    const std::vector<uint8_t>& frame) {
  ByteReader r(nullptr, 0);
  DECA_CHECK(net::UnframeMessage(frame, &r)) << "malformed registration frame";
  auto type = static_cast<net::CtrlType>(r.Read<uint8_t>());
  if (type == net::CtrlType::kHello) {
    HelloMsg hello = DecodeHello(&r);
    DECA_CHECK(hello.executor >= 0 && hello.executor < config_.num_executors);
    Daemon* d = daemons_[static_cast<size_t>(hello.executor)].get();
    {
      std::lock_guard<std::mutex> lock(reg_mu_);
      DECA_CHECK_EQ(hello.generation, d->generation)
          << "stale daemon generation for executor " << hello.executor;
      d->control_port = hello.control_port;
    }
    JobSpec spec;
    spec.config = config_;
    spec.workload = workload_;
    spec.params = params_;
    ByteWriter w;
    w.Write<uint8_t>(static_cast<uint8_t>(net::CtrlType::kSpec));
    EncodeJobSpec(spec, &w);
    return net::FrameMessage(w);
  }
  DECA_CHECK(type == net::CtrlType::kReady)
      << "unexpected registration type " << static_cast<int>(type);
  ReadyMsg ready = DecodeReady(&r);
  DECA_CHECK(ready.executor >= 0 && ready.executor < config_.num_executors);
  Daemon* d = daemons_[static_cast<size_t>(ready.executor)].get();
  {
    std::lock_guard<std::mutex> lock(reg_mu_);
    DECA_CHECK_EQ(ready.generation, d->generation);
    d->data_port = ready.data_port;
    d->ready = true;
  }
  reg_cv_.notify_all();
  ByteWriter w;
  w.Write<uint8_t>(static_cast<uint8_t>(net::CtrlType::kReadyAck));
  return net::FrameMessage(w);
}

std::string ClusterManager::FindExecutord() const {
  if (!config_.cluster.executord_path.empty()) {
    return config_.cluster.executord_path;
  }
  const char* env = std::getenv("DECA_EXECUTORD");
  if (env != nullptr && env[0] != '\0') return env;
  std::string dir = SelfDir();
  std::string tried;
  if (!dir.empty()) {
    const char* candidates[] = {
        "/deca_executord",
        "/../cluster/deca_executord",
        "/../src/cluster/deca_executord",
        "/../../src/cluster/deca_executord",
    };
    for (const char* c : candidates) {
      std::string path = dir + c;
      if (access(path.c_str(), X_OK) == 0) return path;
      tried += " " + path;
    }
  }
  DECA_CHECK(false) << "deca_executord not found (set DECA_EXECUTORD or "
                       "cluster.executord_path); tried:"
                    << tried;
  return std::string();
}

void ClusterManager::Spawn(int executor) {
  Daemon* d = daemons_[static_cast<size_t>(executor)].get();
  std::string path = FindExecutord();
  std::string arg_port =
      "--driver-port=" + std::to_string(reg_server_->port());
  std::string arg_exec = "--executor=" + std::to_string(executor);
  std::string arg_gen;
  {
    std::lock_guard<std::mutex> lock(reg_mu_);
    arg_gen = "--generation=" + std::to_string(d->generation);
  }
  char* argv[] = {const_cast<char*>(path.c_str()),
                  const_cast<char*>(arg_port.c_str()),
                  const_cast<char*>(arg_exec.c_str()),
                  const_cast<char*>(arg_gen.c_str()), nullptr};
  pid_t pid = fork();
  DECA_CHECK(pid >= 0) << "fork failed: " << std::strerror(errno);
  if (pid == 0) {
    // Die with the driver: no orphan daemons if the driver crashes.
    prctl(PR_SET_PDEATHSIG, SIGKILL);
    execv(path.c_str(), argv);
    _exit(127);
  }
  {
    std::lock_guard<std::mutex> lock(reg_mu_);
    d->pid = pid;
  }
  d->reaped = false;
  c_spawned_.fetch_add(1, std::memory_order_relaxed);
}

void ClusterManager::WaitReady(int executor) {
  Daemon* d = daemons_[static_cast<size_t>(executor)].get();
  std::unique_lock<std::mutex> lock(reg_mu_);
  bool ok = reg_cv_.wait_for(lock, std::chrono::seconds(30),
                             [d] { return d->ready; });
  DECA_CHECK(ok) << "executor " << executor
                 << " daemon failed to register within 30s";
}

void ClusterManager::CreateClients(int executor) {
  Daemon* d = daemons_[static_cast<size_t>(executor)].get();
  uint16_t port;
  {
    std::lock_guard<std::mutex> lock(reg_mu_);
    port = d->control_port;
  }
  d->dispatch = std::make_unique<net::RpcClient>(
      port, config_.cluster.connect_attempts,
      config_.cluster.retry_backoff_base_ms);
  // A heartbeat miss must be a miss: one connect attempt, no masking.
  d->heartbeat = std::make_unique<net::RpcClient>(
      port, /*connect_attempts=*/1, config_.cluster.retry_backoff_base_ms);
}

void ClusterManager::BroadcastPeers() {
  ByteWriter w;
  w.Write<uint8_t>(static_cast<uint8_t>(net::CtrlType::kUpdatePeers));
  std::vector<std::pair<int, uint16_t>> peers;
  {
    std::lock_guard<std::mutex> lock(reg_mu_);
    for (int e = 0; e < config_.num_executors; ++e) {
      Daemon* d = daemons_[static_cast<size_t>(e)].get();
      if (d->ready) peers.emplace_back(e, d->data_port);
    }
  }
  w.WriteVarU64(peers.size());
  for (const auto& [e, port] : peers) {
    w.WriteVarI64(e);
    w.WriteVarU64(port);
  }
  std::vector<uint8_t> frame = net::FrameMessage(w);
  for (const auto& [e, port] : peers) {
    std::vector<uint8_t> resp = SendOnDispatch(e, -1, frame);
    ByteReader r(nullptr, 0);
    DECA_CHECK(net::UnframeMessage(resp, &r));
    DECA_CHECK_EQ(r.Read<uint8_t>(),
                  static_cast<uint8_t>(net::CtrlType::kPeersAck));
  }
}

std::vector<uint8_t> ClusterManager::SendOnDispatch(
    int executor, int stage, const std::vector<uint8_t>& frame) {
  Daemon* d = daemons_[static_cast<size_t>(executor)].get();
  c_rpc_messages_.fetch_add(1, std::memory_order_relaxed);
  try {
    std::lock_guard<std::mutex> lock(d->dispatch_mu);
    DECA_CHECK(d->dispatch != nullptr);
    return d->dispatch->Call(frame, config_.cluster.rpc_deadline_ms);
  } catch (const net::ConnectError& err) {
    throw fault::ExecutorLostError(executor, stage, err.what());
  } catch (const net::RpcError& err) {
    throw fault::ExecutorLostError(executor, stage, err.what());
  }
}

exec::RemoteTaskOutcome ClusterManager::RunTask(
    int executor, const exec::RemoteTaskEnvelope& env) {
  if (IsDead(daemons_[static_cast<size_t>(executor)].get())) {
    throw fault::ExecutorLostError(executor, env.stage,
                                   "executor marked dead");
  }
  ByteWriter w;
  w.Write<uint8_t>(static_cast<uint8_t>(net::CtrlType::kLaunchTask));
  env.Encode(&w);
  std::vector<uint8_t> resp = SendOnDispatch(executor, env.stage,
                                             net::FrameMessage(w));
  ByteReader r(nullptr, 0);
  DECA_CHECK(net::UnframeMessage(resp, &r));
  DECA_CHECK_EQ(r.Read<uint8_t>(),
                static_cast<uint8_t>(net::CtrlType::kTaskResult));
  return exec::RemoteTaskOutcome::Decode(&r);
}

spark::ExecutorSnapshot ClusterManager::SendStageDone(int executor,
                                                      const LogEntry& entry) {
  ByteWriter w;
  w.Write<uint8_t>(static_cast<uint8_t>(net::CtrlType::kStageDone));
  w.WriteVarI64(entry.stage);
  w.WriteVarU64(entry.blobs.size());
  for (const auto& blob : entry.blobs) exec::WriteBlob(&w, blob);
  std::vector<uint8_t> resp = SendOnDispatch(executor, entry.stage,
                                             net::FrameMessage(w));
  ByteReader r(nullptr, 0);
  DECA_CHECK(net::UnframeMessage(resp, &r));
  DECA_CHECK_EQ(r.Read<uint8_t>(),
                static_cast<uint8_t>(net::CtrlType::kStageAck));
  return spark::ExecutorSnapshot::Decode(&r);
}

std::vector<spark::ExecutorSnapshot> ClusterManager::StageDone(
    int stage, bool collect, const std::vector<std::vector<uint8_t>>& blobs) {
  log_.push_back(LogEntry{stage, collect, blobs});
  // A stage-barrier failure is a job failure (ExecutorLostError
  // propagates): the stage completed but its results can't be
  // broadcast, so no daemon may advance.
  std::vector<spark::ExecutorSnapshot> snapshots(
      static_cast<size_t>(config_.num_executors));
  for (int e = 0; e < config_.num_executors; ++e) {
    snapshots[static_cast<size_t>(e)] = SendStageDone(e, log_.back());
  }
  return snapshots;
}

void ClusterManager::KillExecutor(int executor) {
  Daemon* d = daemons_[static_cast<size_t>(executor)].get();
  pid_t pid;
  {
    std::lock_guard<std::mutex> lock(reg_mu_);
    pid = d->pid;
  }
  c_killed_.fetch_add(1, std::memory_order_relaxed);
  kill(pid, SIGKILL);
  // The point of the exercise: the driver learns of the death the same
  // way it would learn of a real one — missed heartbeats, failed
  // probes — not by watching the child.
  WaitDead(executor);
}

void ClusterManager::RecoverExecutor(int executor) {
  Daemon* d = daemons_[static_cast<size_t>(executor)].get();
  WaitDead(executor);
  {
    std::lock_guard<std::mutex> lock(reg_mu_);
    ++d->generation;
    d->ready = false;
    d->control_port = 0;
    d->data_port = 0;
  }
  {
    std::lock_guard<std::mutex> lock(d->dispatch_mu);
    d->dispatch.reset();
    d->heartbeat.reset();
  }
  Spawn(executor);
  WaitReady(executor);
  CreateClients(executor);
  // Fast-forward: replay every stage barrier so the daemon's program
  // arrives at the current stage with identical driver-side state; the
  // SparkContext then replays lost lineage on top of it.
  for (const LogEntry& entry : log_) SendStageDone(executor, entry);
  BroadcastPeers();
  {
    std::lock_guard<std::mutex> lock(monitor_mu_);
    d->misses = 0;
    d->dead = false;
    d->reaped = false;
  }
  c_respawned_.fetch_add(1, std::memory_order_relaxed);
}

void ClusterManager::NoteStageQuarantine() {
  c_quarantines_.fetch_add(1, std::memory_order_relaxed);
}

spark::ClusterCounters ClusterManager::counters() const {
  spark::ClusterCounters c;
  c.executors_spawned = c_spawned_.load(std::memory_order_relaxed);
  c.executors_killed = c_killed_.load(std::memory_order_relaxed);
  c.executors_respawned = c_respawned_.load(std::memory_order_relaxed);
  c.executors_declared_dead = c_declared_dead_.load(std::memory_order_relaxed);
  c.heartbeats_sent = c_heartbeats_sent_.load(std::memory_order_relaxed);
  c.heartbeat_misses = c_heartbeat_misses_.load(std::memory_order_relaxed);
  c.reconnect_probes = c_reconnect_probes_.load(std::memory_order_relaxed);
  c.stage_quarantines = c_quarantines_.load(std::memory_order_relaxed);
  c.rpc_messages = c_rpc_messages_.load(std::memory_order_relaxed);
  return c;
}

bool ClusterManager::IsDead(Daemon* d) {
  std::lock_guard<std::mutex> lock(monitor_mu_);
  return d->dead;
}

bool ClusterManager::PingOnce(net::RpcClient* client, int deadline_ms) {
  static const std::vector<uint8_t> kPing = HeartbeatFrame();
  try {
    std::vector<uint8_t> resp = client->Call(kPing, deadline_ms);
    ByteReader r(nullptr, 0);
    if (!net::UnframeMessage(resp, &r)) return false;
    return r.Read<uint8_t>() ==
           static_cast<uint8_t>(net::CtrlType::kHeartbeatAck);
  } catch (const std::exception&) {
    return false;
  }
}

void ClusterManager::DeclareDead(int executor, Daemon* d) {
  (void)executor;
  pid_t pid;
  {
    std::lock_guard<std::mutex> lock(reg_mu_);
    pid = d->pid;
  }
  // Make the verdict true before acting on it: a wedged-but-alive
  // daemon must not keep mutating state after the driver gives its
  // partitions away.
  kill(pid, SIGKILL);
  waitpid(pid, nullptr, 0);
  {
    std::lock_guard<std::mutex> lock(monitor_mu_);
    d->dead = true;
    d->reaped = true;
  }
  c_declared_dead_.fetch_add(1, std::memory_order_relaxed);
  monitor_cv_.notify_all();
}

void ClusterManager::WaitDead(int executor) {
  Daemon* d = daemons_[static_cast<size_t>(executor)].get();
  std::unique_lock<std::mutex> lock(monitor_mu_);
  monitor_cv_.wait(lock, [d] { return d->dead; });
}

void ClusterManager::MonitorLoop() {
  const int interval = std::max(1, config_.cluster.heartbeat_interval_ms);
  // A slow ack is not a death: a loaded machine can delay a healthy
  // daemon's reply well past the ping cadence, so the deadline is far
  // larger than the interval. A dead peer still fails fast (refused or
  // reset connection), so detection latency stays at the miss threshold.
  const int ping_deadline = std::max(250, 5 * interval);
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(monitor_mu_);
      monitor_cv_.wait_for(lock, std::chrono::milliseconds(interval),
                           [this] { return stopping_; });
      if (stopping_) return;
    }
    for (int e = 0; e < config_.num_executors; ++e) {
      Daemon* d = daemons_[static_cast<size_t>(e)].get();
      // IsDead first: during a recovery the daemon stays flagged dead
      // until its fresh heartbeat client is fully wired (both under
      // monitor_mu_), so this read never races the client reset.
      if (IsDead(d) || d->heartbeat == nullptr) continue;
      if (d->suppress_left > 0) {
        // Test hook: this ping "was lost in the network" — never sent,
        // counted as a miss, probed like the real thing.
        --d->suppress_left;
        ++d->misses;
        c_heartbeat_misses_.fetch_add(1, std::memory_order_relaxed);
      } else {
        c_heartbeats_sent_.fetch_add(1, std::memory_order_relaxed);
        if (PingOnce(d->heartbeat.get(), ping_deadline)) {
          d->misses = 0;
          continue;
        }
        ++d->misses;
        c_heartbeat_misses_.fetch_add(1, std::memory_order_relaxed);
      }
      if (d->misses < config_.cluster.heartbeat_miss_threshold) continue;
      // Escalate: exponential-backoff reconnect probes on fresh
      // connections before declaring death.
      uint16_t port;
      {
        std::lock_guard<std::mutex> lock(reg_mu_);
        port = d->control_port;
      }
      bool alive = false;
      int backoff = std::max(1, config_.cluster.retry_backoff_base_ms);
      for (int i = 0; i < config_.cluster.reconnect_probes; ++i) {
        usleep(static_cast<useconds_t>(std::min(backoff, 500) * 1000));
        backoff *= 2;
        c_reconnect_probes_.fetch_add(1, std::memory_order_relaxed);
        net::RpcClient probe(port, /*connect_attempts=*/1,
                             config_.cluster.retry_backoff_base_ms);
        if (PingOnce(&probe, ping_deadline)) {
          alive = true;
          break;
        }
      }
      if (alive) {
        d->misses = 0;
      } else {
        DeclareDead(e, d);
      }
    }
  }
}

}  // namespace deca::cluster
