#include "cluster/scoped_job.h"

#include <utility>

#include "cluster/cluster_manager.h"
#include "cluster/daemon_runtime.h"

namespace deca::cluster {

ScopedJob::ScopedJob(spark::SparkConfig* config, const std::string& workload,
                     std::vector<uint8_t> params) {
  if (DaemonRuntime* daemon = DaemonRuntime::Current()) {
    daemon->WireConfig(config);
    return;
  }
  if (config->dist_mode != spark::DistMode::kProcess) return;
  manager_ =
      std::make_unique<ClusterManager>(*config, workload, std::move(params));
  manager_->Start();
  config->runtime.role = spark::DistRole::kDriver;
  config->runtime.driver = manager_.get();
}

ScopedJob::~ScopedJob() {
  if (manager_ != nullptr) manager_->Shutdown();
}

}  // namespace deca::cluster
