#include "alloc/sys_mem.h"

#include <cerrno>
#include <cstring>

#include "common/bytes.h"
#include "common/logging.h"

#if defined(__linux__)
#include <sys/mman.h>
#include <unistd.h>
#else
#include <cstdlib>
#endif

namespace deca::alloc {

const char* HugePageModeName(HugePageMode m) {
  switch (m) {
    case HugePageMode::kOff: return "off";
    case HugePageMode::kMadvise: return "madvise";
    case HugePageMode::kHugetlb: return "hugetlb";
  }
  return "?";
}

const char* NumaPolicyName(NumaPolicy p) {
  switch (p) {
    case NumaPolicy::kNone: return "none";
    case NumaPolicy::kInterleave: return "interleave";
    case NumaPolicy::kLocal: return "local";
  }
  return "?";
}

NumaPolicy ParseNumaPolicy(const char* s) {
  if (s != nullptr) {
    if (std::strcmp(s, "interleave") == 0) return NumaPolicy::kInterleave;
    if (std::strcmp(s, "local") == 0) return NumaPolicy::kLocal;
  }
  return NumaPolicy::kNone;
}

#if defined(__linux__)

size_t OsPageBytes() {
  static const size_t kPage = static_cast<size_t>(sysconf(_SC_PAGESIZE));
  return kPage;
}

Mapping MapAnonymous(const MapRequest& req) {
  Mapping m;
  m.bytes = AlignUp(req.bytes, OsPageBytes());
  // The NUMA policy/node in `req` is a placement seam only: recorded by the
  // caller's stats, applied once an mbind-capable backend exists.
  if (req.huge_pages == HugePageMode::kHugetlb) {
    void* p = mmap(nullptr, m.bytes, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS | MAP_HUGETLB, -1, 0);
    if (p != MAP_FAILED) {
      m.addr = p;
      m.huge_backed = true;
      return m;
    }
    // No hugetlb pool configured (ENOMEM/EINVAL): fall through to THP.
  }
  void* p = mmap(nullptr, m.bytes, PROT_READ | PROT_WRITE,
                 MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  DECA_CHECK(p != MAP_FAILED)
      << "mmap(" << m.bytes << ") failed: " << std::strerror(errno);
  m.addr = p;
  if (req.huge_pages != HugePageMode::kOff) {
#ifdef MADV_HUGEPAGE
    m.huge_backed = madvise(p, m.bytes, MADV_HUGEPAGE) == 0;
#endif
  }
  return m;
}

void Unmap(const Mapping& m) {
  if (!m.valid()) return;
  int rc = munmap(m.addr, m.bytes);
  DECA_CHECK_EQ(rc, 0) << "munmap(" << m.addr << ", " << m.bytes
                       << ") failed: " << std::strerror(errno);
}

void ReleaseRange(void* addr, size_t bytes) {
  if (addr == nullptr || bytes == 0) return;
  int rc = madvise(addr, bytes, MADV_DONTNEED);
  // Hugetlb-backed ranges report EINVAL: they cannot give up partial pages.
  DECA_CHECK(rc == 0 || errno == EINVAL)
      << "madvise(DONTNEED, " << addr << ", " << bytes
      << ") failed: " << std::strerror(errno);
}

#else  // !__linux__

size_t OsPageBytes() { return 4096; }

Mapping MapAnonymous(const MapRequest& req) {
  Mapping m;
  m.bytes = AlignUp(req.bytes, OsPageBytes());
  // Portable rung: calloc gives the zero-fill guarantee mmap provides.
  m.addr = std::calloc(1, m.bytes);
  DECA_CHECK(m.addr != nullptr) << "calloc(" << m.bytes << ") failed";
  return m;
}

void Unmap(const Mapping& m) { std::free(m.addr); }

void ReleaseRange(void*, size_t) {}

#endif  // __linux__

}  // namespace deca::alloc
