#ifndef DECA_ALLOC_SYS_MEM_H_
#define DECA_ALLOC_SYS_MEM_H_

#include <cstddef>
#include <cstdint>

namespace deca::alloc {

/// How arena chunks ask the OS for huge-page backing. The ladder is
/// strictly opportunistic: every rung falls back to the next one, and the
/// plain anonymous mapping at the bottom cannot fail short of ENOMEM.
enum class HugePageMode : uint8_t {
  kOff = 0,      // plain anonymous pages only
  kMadvise = 1,  // plain mapping + MADV_HUGEPAGE hint (THP), the default
  kHugetlb = 2,  // try MAP_HUGETLB first, fall back to the kMadvise rung
};

/// NUMA placement hint seam. The policy is threaded through every chunk
/// mapping so a later PR can wire `mbind`/`set_mempolicy` underneath it;
/// today it is recorded in stats and is a deliberate no-op (the build
/// image has no libnuma, and off Linux there is nothing to bind).
enum class NumaPolicy : uint8_t {
  kNone = 0,        // first-touch default
  kInterleave = 1,  // round-robin chunk placement across nodes
  kLocal = 2,       // bind chunks to the requesting thread's node
};

const char* HugePageModeName(HugePageMode m);
const char* NumaPolicyName(NumaPolicy p);
/// Parses "none" / "interleave" / "local" (anything else -> kNone).
NumaPolicy ParseNumaPolicy(const char* s);

/// One anonymous mapping returned by MapAnonymous. `huge_backed` records
/// whether the huge-page rung that was asked for actually took (MAP_HUGETLB
/// succeeded, or the MADV_HUGEPAGE hint was accepted).
struct Mapping {
  void* addr = nullptr;
  size_t bytes = 0;
  bool huge_backed = false;

  bool valid() const { return addr != nullptr; }
};

struct MapRequest {
  size_t bytes = 0;  // rounded up to the OS page size internally
  HugePageMode huge_pages = HugePageMode::kMadvise;
  NumaPolicy numa_policy = NumaPolicy::kNone;
  int numa_node = -1;  // placement hint; -1 = unpinned
};

/// The OS page granularity (sysconf(_SC_PAGESIZE); 4096 off Linux).
size_t OsPageBytes();

/// Maps zero-filled anonymous memory, walking the huge-page ladder for the
/// requested mode. Aborts with the errno string if even the plain rung
/// fails — callers never see a null mapping.
Mapping MapAnonymous(const MapRequest& req);

/// munmap with errno checking; aborts on failure (a bad unmap means the
/// allocator's bookkeeping is corrupt, not a recoverable condition).
void Unmap(const Mapping& m);

/// madvise(MADV_DONTNEED) on a page-aligned range: keeps the VA reserved
/// but returns the physical pages. Errno-checked except for EINVAL, which
/// hugetlb mappings legitimately return (they cannot drop single pages).
void ReleaseRange(void* addr, size_t bytes);

}  // namespace deca::alloc

#endif  // DECA_ALLOC_SYS_MEM_H_
