#include "alloc/arena.h"

#include <algorithm>

#include "common/bytes.h"
#include "common/logging.h"

namespace deca::alloc {

namespace {

// Slabs at or above this size get madvise(DONTNEED) when they come back to
// the central freelist: the VA stays pooled but the physical pages return
// to the OS. Smaller classes churn too fast to be worth the syscall.
constexpr size_t kReleaseThresholdBytes = 1u << 20;

constexpr int kMinClassShift = 6;  // 64 bytes

}  // namespace

void AllocStats::Add(const AllocStats& o) {
  alloc_calls += o.alloc_calls;
  free_calls += o.free_calls;
  bytes_requested += o.bytes_requested;
  slab_allocs += o.slab_allocs;
  slab_reuses += o.slab_reuses;
  freelist_steals += o.freelist_steals;
  remote_frees += o.remote_frees;
  direct_maps += o.direct_maps;
  direct_unmaps += o.direct_unmaps;
  chunks_mapped += o.chunks_mapped;
  hugepage_chunks += o.hugepage_chunks;
  arena_bytes_reserved += o.arena_bytes_reserved;
}

int ArenaAllocator::SizeClass(size_t bytes) {
  if (bytes > kMaxClassBytes) return -1;
  size_t rounded = kMinClassBytes;
  int cls = 0;
  while (rounded < bytes) {
    rounded <<= 1;
    ++cls;
  }
  return cls;
}

size_t ArenaAllocator::ClassBytes(int cls) {
  DECA_CHECK(cls >= 0 && cls < kNumClasses) << "bad size class " << cls;
  return size_t{1} << (kMinClassShift + cls);
}

ArenaAllocator::ArenaAllocator(const ArenaOptions& options)
    : options_(options) {
  DECA_CHECK_GE(options_.chunk_bytes, kMaxClassBytes)
      << "arena chunks must hold at least one max-class slab";
}

ArenaAllocator::~ArenaAllocator() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Chunk& c : chunks_) Unmap(c.map);
}

FreeNode* ArenaAllocator::CarveLocked(int cls, int want, int* taken) {
  const size_t slab = ClassBytes(cls);
  // Page-align big-class slabs so ReturnSlabs can ReleaseRange them.
  const size_t align = std::min(slab, OsPageBytes());
  if (chunks_.empty() ||
      AlignUp(chunks_.back().bump, align) + slab > chunks_.back().map.bytes) {
    MapRequest req;
    req.bytes = std::max(options_.chunk_bytes, slab);
    req.huge_pages = options_.huge_pages;
    req.numa_policy = options_.numa_policy;
    // Interleave rotates the hinted node per chunk; local leaves it to the
    // faulting thread. Either way it is a hint until mbind is wired in.
    req.numa_node =
        options_.numa_policy == NumaPolicy::kInterleave
            ? static_cast<int>(next_interleave_node_++)
            : -1;
    Chunk c;
    c.map = MapAnonymous(req);
    chunks_.push_back(c);
    ++chunks_mapped_;
    if (c.map.huge_backed) ++hugepage_chunks_;
    bytes_reserved_ += c.map.bytes;
  }
  Chunk& c = chunks_.back();
  c.bump = AlignUp(c.bump, align);
  FreeNode* head = nullptr;
  int n = 0;
  while (n < want && c.bump + slab <= c.map.bytes) {
    auto* node =
        new (static_cast<uint8_t*>(c.map.addr) + c.bump) FreeNode{head};
    head = node;
    c.bump += slab;
    ++n;
  }
  carved_count_[cls] += static_cast<uint64_t>(n);
  *taken = n;
  return head;
}

FreeNode* ArenaAllocator::TakeSlabs(int cls, int want, int* taken) {
  DECA_CHECK_GT(want, 0);
  std::lock_guard<std::mutex> lock(mu_);
  FreeNode* head = nullptr;
  int n = 0;
  while (n < want && central_[cls] != nullptr) {
    FreeNode* node = central_[cls];
    central_[cls] = node->next;
    node->next = head;
    head = node;
    ++n;
  }
  central_count_[cls] -= static_cast<uint64_t>(n);
  if (n < want) {
    int carved = 0;
    FreeNode* fresh = CarveLocked(cls, want - n, &carved);
    // Splice: fresh chain in front of whatever the central list yielded.
    if (fresh != nullptr) {
      FreeNode* tail = fresh;
      while (tail->next != nullptr) tail = tail->next;
      tail->next = head;
      head = fresh;
      n += carved;
    }
  }
  DECA_CHECK_GT(n, 0) << "arena failed to produce a class-" << cls << " slab";
  *taken = n;
  return head;
}

void ArenaAllocator::ReturnSlabs(int cls, FreeNode* head) {
  if (head == nullptr) return;
  const size_t slab = ClassBytes(cls);
  const bool release = slab >= kReleaseThresholdBytes;
  std::lock_guard<std::mutex> lock(mu_);
  while (head != nullptr) {
    FreeNode* next = head->next;
    if (release) {
      // Keep the node word resident; drop the rest of the slab's pages.
      const size_t page = OsPageBytes();
      auto* base = reinterpret_cast<uint8_t*>(head);
      ReleaseRange(base + page, slab - page);
    }
    head->next = central_[cls];
    central_[cls] = head;
    ++central_count_[cls];
    head = next;
  }
}

Mapping ArenaAllocator::MapDirect(size_t bytes, int numa_node) {
  MapRequest req;
  req.bytes = bytes;
  req.huge_pages = options_.huge_pages;
  req.numa_policy = options_.numa_policy;
  req.numa_node = numa_node;
  Mapping m = MapAnonymous(req);
  std::lock_guard<std::mutex> lock(mu_);
  ++direct_maps_;
  bytes_reserved_ += m.bytes;
  return m;
}

void ArenaAllocator::UnmapDirect(const Mapping& m) {
  Unmap(m);
  std::lock_guard<std::mutex> lock(mu_);
  ++direct_unmaps_;
  bytes_reserved_ -= m.bytes;
}

void ArenaAllocator::AddGlobalStats(AllocStats* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  out->chunks_mapped += chunks_mapped_;
  out->hugepage_chunks += hugepage_chunks_;
  out->arena_bytes_reserved += bytes_reserved_;
}

bool ArenaAllocator::AllSlabsReturned() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (direct_maps_ != direct_unmaps_) return false;
  for (int cls = 0; cls < kNumClasses; ++cls) {
    if (central_count_[cls] != carved_count_[cls]) return false;
  }
  return true;
}

namespace {
std::mutex g_global_mu;
ArenaAllocator* g_global_arena = nullptr;  // intentionally immortal
}  // namespace

ArenaAllocator* ArenaAllocator::Global(const ArenaOptions& options) {
  std::lock_guard<std::mutex> lock(g_global_mu);
  if (g_global_arena == nullptr) {
    g_global_arena = new ArenaAllocator(options);
  }
  return g_global_arena;
}

ArenaAllocator* ArenaAllocator::GlobalIfCreated() {
  std::lock_guard<std::mutex> lock(g_global_mu);
  return g_global_arena;
}

}  // namespace deca::alloc
