#ifndef DECA_ALLOC_PAGE_ALLOCATOR_H_
#define DECA_ALLOC_PAGE_ALLOCATOR_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "alloc/arena.h"

namespace deca::alloc {

/// One allocation handed out by a PageAllocator. Plain value type: the
/// caller owns it until Free (or wraps it in Bytes/ScratchBuffer below).
struct Block {
  enum Kind : uint8_t { kNone = 0, kFallback = 1, kSlab = 2, kDirect = 3 };

  uint8_t* data = nullptr;
  size_t size = 0;  // requested bytes
  size_t cap = 0;   // usable capacity (class size / mapping size)
  Kind kind = kNone;
  int8_t cls = -1;       // size class for kSlab
  int8_t shard = -1;     // shard that served a kSlab alloc (remote-free stat)
  size_t map_bytes = 0;  // full mapping size for kDirect

  bool valid() const { return data != nullptr; }
};

/// Per-executor allocation facade. In arena mode it pools size-class slabs
/// in per-worker-thread shards; otherwise it degrades to `new[]`/`delete[]`
/// while still counting every call, so the deterministic counters in
/// AllocStats are bit-identical across DECA_ARENA=0|1.
///
/// Shard protocol (ABA-free):
///   * each shard keeps one Treiber stack per size class; pushes are a CAS
///     loop and the only pop is `exchange(nullptr)` (pop-all), so no node
///     is ever re-read after a concurrent pop — allocation takes the whole
///     chain, keeps the head, and CASes the remainder back;
///   * frees push onto the *freeing* thread's shard (a cross-thread free is
///     counted as remote_frees via the origin shard recorded in the Block);
///   * when a shard comes up empty the allocator takes `steal_mu_` and
///     raids the sibling shards' stacks (pop-all again), keeping the steal
///     path serialized while leaving the lock-free fast path untouched;
///   * last resort is the shared ArenaAllocator: central freelist, then a
///     fresh carve, refilling the local shard with the surplus.
class PageAllocator {
 public:
  /// Arena mode resolves to the process-global arena; with
  /// options.enabled == false the handle runs in counting fallback mode.
  PageAllocator(const ArenaOptions& options, int shards);

  /// Test seam: pool on an explicit (usually private) arena.
  PageAllocator(ArenaAllocator* arena, int shards);

  /// Returns pooled slabs to the arena's central freelists.
  ~PageAllocator();

  PageAllocator(const PageAllocator&) = delete;
  PageAllocator& operator=(const PageAllocator&) = delete;

  Block Allocate(size_t bytes);
  void Free(Block* block);

  /// Counts an allocation that bypassed Allocate (the zero-copy vector
  /// fallback in Bytes): keeps alloc_calls/bytes_requested identical to
  /// the arena path without forcing a copy in fallback mode.
  void NoteAlloc(size_t bytes);
  void NoteFree();

  bool arena_active() const { return arena_ != nullptr; }
  int shard_count() const { return static_cast<int>(shards_.size()); }

  /// This handle's counters only; global arena fields stay zero (the
  /// run-level aggregate overlays them once via AddGlobalArenaStats).
  AllocStats Stats() const;

 private:
  struct AtomicStack {
    std::atomic<FreeNode*> head{nullptr};

    void Push(FreeNode* node);
    void PushChain(FreeNode* chain_head, FreeNode* chain_tail);
    FreeNode* PopAll() { return head.exchange(nullptr, std::memory_order_acquire); }
  };

  struct alignas(64) Shard {
    AtomicStack classes[ArenaAllocator::kNumClasses];
  };

  int ShardForThisThread() const;
  FreeNode* TakeFromShards(int cls, int my_shard);

  ArenaAllocator* arena_ = nullptr;  // null => counting fallback mode
  std::vector<std::unique_ptr<Shard>> shards_;
  std::mutex steal_mu_;
  mutable std::mutex register_mu_;
  mutable uint32_t next_shard_ = 0;

  std::atomic<uint64_t> alloc_calls_{0};
  std::atomic<uint64_t> free_calls_{0};
  std::atomic<uint64_t> bytes_requested_{0};
  std::atomic<uint64_t> slab_allocs_{0};
  std::atomic<uint64_t> slab_reuses_{0};
  std::atomic<uint64_t> freelist_steals_{0};
  std::atomic<uint64_t> remote_frees_{0};
  std::atomic<uint64_t> direct_maps_{0};
  std::atomic<uint64_t> direct_unmaps_{0};
};

/// Overlays the process-global arena's chunk/hugepage fields onto `out`;
/// a no-op when no global arena was ever created (DECA_ARENA=0 runs).
void AddGlobalArenaStats(AllocStats* out);

/// Immutable shared byte buffer, arena-capable. Replaces the block store's
/// `shared_ptr<const vector<uint8_t>>` payloads: same data()/size() shape,
/// but the storage can come from a PageAllocator (and is returned to it by
/// the destructor, from whichever thread drops the last reference).
class Bytes {
 public:
  /// Uninitialized buffer of `n` bytes from `pa` (new[] when pa is null);
  /// fill via mutable_data() before sharing.
  static std::shared_ptr<Bytes> New(PageAllocator* pa, size_t n);

  /// Copy of `[src, src+n)`.
  static std::shared_ptr<const Bytes> Copy(PageAllocator* pa,
                                           const uint8_t* src, size_t n);

  /// Zero-copy adoption of serializer output. In arena mode the vector is
  /// copied into a slab; otherwise it is moved in and only *counted* on
  /// `pa` (NoteAlloc/NoteFree), keeping counters mode-identical.
  static std::shared_ptr<const Bytes> FromWriter(PageAllocator* pa,
                                                 std::vector<uint8_t> buf);

  ~Bytes();

  Bytes(const Bytes&) = delete;
  Bytes& operator=(const Bytes&) = delete;

  const uint8_t* data() const {
    return block_.valid() ? block_.data : vec_.data();
  }
  uint8_t* mutable_data() {
    return block_.valid() ? block_.data : vec_.data();
  }
  size_t size() const { return block_.valid() ? block_.size : vec_.size(); }

 private:
  Bytes() = default;

  PageAllocator* pa_ = nullptr;
  bool counted_ = false;  // vector storage charged via NoteAlloc
  Block block_;
  std::vector<uint8_t> vec_;
};

using BytesPtr = std::shared_ptr<const Bytes>;

/// Reusable grow-only scratch buffer for file I/O (spill-run merge records,
/// tier reads). Reserve discards contents; arena slabs back it when the
/// owning heap has a PageAllocator.
class ScratchBuffer {
 public:
  explicit ScratchBuffer(PageAllocator* pa) : pa_(pa) {}
  ~ScratchBuffer() { Release(); }

  ScratchBuffer(const ScratchBuffer&) = delete;
  ScratchBuffer& operator=(const ScratchBuffer&) = delete;
  ScratchBuffer(ScratchBuffer&& o) noexcept;
  ScratchBuffer& operator=(ScratchBuffer&& o) noexcept;

  /// Ensures capacity >= n; existing contents are NOT preserved.
  void Reserve(size_t n);
  void Release();

  uint8_t* data() {
    return pa_ != nullptr ? block_.data : vec_.data();
  }
  size_t capacity() const {
    return pa_ != nullptr ? block_.cap : vec_.size();
  }

 private:
  PageAllocator* pa_ = nullptr;
  Block block_;
  std::vector<uint8_t> vec_;
};

}  // namespace deca::alloc

#endif  // DECA_ALLOC_PAGE_ALLOCATOR_H_
