#include "alloc/page_allocator.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/logging.h"

namespace deca::alloc {

namespace {

// Slabs pulled from the arena per refill, by class size: small classes
// amortize the arena mutex over a batch, big classes come one at a time.
int RefillBatch(int cls) {
  const size_t bytes = ArenaAllocator::ClassBytes(cls);
  if (bytes >= (1u << 20)) return 1;
  return static_cast<int>(
      std::max<size_t>(1, std::min<size_t>(32, (256u << 10) / bytes)));
}

// Thread -> shard registration. One cached (allocator, shard) pair covers
// the common one-allocator-per-thread case without a map lookup on the hot
// path; the vector handles threads touching several executors' allocators.
struct TlsShardEntry {
  const void* pa;
  int shard;
};
thread_local TlsShardEntry g_tls_hot{nullptr, -1};
thread_local std::vector<TlsShardEntry> g_tls_all;

}  // namespace

void PageAllocator::AtomicStack::Push(FreeNode* node) {
  FreeNode* old = head.load(std::memory_order_relaxed);
  do {
    node->next = old;
  } while (!head.compare_exchange_weak(old, node, std::memory_order_release,
                                       std::memory_order_relaxed));
}

void PageAllocator::AtomicStack::PushChain(FreeNode* chain_head,
                                           FreeNode* chain_tail) {
  FreeNode* old = head.load(std::memory_order_relaxed);
  do {
    chain_tail->next = old;
  } while (!head.compare_exchange_weak(old, chain_head,
                                       std::memory_order_release,
                                       std::memory_order_relaxed));
}

PageAllocator::PageAllocator(const ArenaOptions& options, int shards)
    : PageAllocator(
          options.enabled ? ArenaAllocator::Global(options) : nullptr,
          shards) {}

PageAllocator::PageAllocator(ArenaAllocator* arena, int shards)
    : arena_(arena) {
  DECA_CHECK_GT(shards, 0);
  if (arena_ != nullptr) {
    shards_.reserve(static_cast<size_t>(shards));
    for (int i = 0; i < shards; ++i) {
      shards_.push_back(std::make_unique<Shard>());
    }
  }
}

PageAllocator::~PageAllocator() {
  if (arena_ == nullptr) return;
  // Hand every pooled slab back so the arena's central freelists (and the
  // zero-leak invariant) survive this executor generation.
  for (auto& shard : shards_) {
    for (int cls = 0; cls < ArenaAllocator::kNumClasses; ++cls) {
      arena_->ReturnSlabs(cls, shard->classes[cls].PopAll());
    }
  }
}

int PageAllocator::ShardForThisThread() const {
  // The modulo guards against a stale TLS entry left by a dead allocator
  // that happened to share this address but had more shards.
  const int n = static_cast<int>(shards_.size());
  if (g_tls_hot.pa == this) return g_tls_hot.shard % n;
  for (const TlsShardEntry& e : g_tls_all) {
    if (e.pa == this) {
      g_tls_hot = e;
      return e.shard % n;
    }
  }
  int shard;
  {
    std::lock_guard<std::mutex> lock(register_mu_);
    shard = static_cast<int>(next_shard_++ % shards_.size());
  }
  g_tls_all.push_back({this, shard});
  g_tls_hot = {this, shard};
  return shard;
}

FreeNode* PageAllocator::TakeFromShards(int cls, int my_shard) {
  AtomicStack& mine = shards_[static_cast<size_t>(my_shard)]->classes[cls];
  FreeNode* chain = mine.PopAll();
  if (chain == nullptr) {
    // Steal path: serialized so concurrent empty shards don't ping-pong
    // each other's refills; pop-all keeps it ABA-free like the fast path.
    std::lock_guard<std::mutex> lock(steal_mu_);
    for (size_t i = 0; chain == nullptr && i < shards_.size(); ++i) {
      if (static_cast<int>(i) == my_shard) continue;
      chain = shards_[i]->classes[cls].PopAll();
    }
    if (chain != nullptr) {
      freelist_steals_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (chain == nullptr) return nullptr;
  slab_reuses_.fetch_add(1, std::memory_order_relaxed);
  // Keep the head, give the remainder back to our shard.
  FreeNode* node = chain;
  if (chain->next != nullptr) {
    FreeNode* rest = chain->next;
    FreeNode* tail = rest;
    while (tail->next != nullptr) tail = tail->next;
    mine.PushChain(rest, tail);
  }
  node->next = nullptr;
  return node;
}

Block PageAllocator::Allocate(size_t bytes) {
  DECA_CHECK_GT(bytes, 0u);
  alloc_calls_.fetch_add(1, std::memory_order_relaxed);
  bytes_requested_.fetch_add(bytes, std::memory_order_relaxed);

  Block b;
  b.size = bytes;
  if (arena_ == nullptr) {
    b.data = new uint8_t[bytes];
    b.cap = bytes;
    b.kind = Block::kFallback;
    return b;
  }

  const int cls = ArenaAllocator::SizeClass(bytes);
  if (cls < 0) {
    Mapping m = arena_->MapDirect(bytes, /*numa_node=*/-1);
    direct_maps_.fetch_add(1, std::memory_order_relaxed);
    b.data = static_cast<uint8_t*>(m.addr);
    b.cap = bytes;
    b.map_bytes = m.bytes;
    b.kind = Block::kDirect;
    return b;
  }

  const int my_shard = ShardForThisThread();
  FreeNode* node = TakeFromShards(cls, my_shard);
  if (node == nullptr) {
    int taken = 0;
    FreeNode* chain = arena_->TakeSlabs(cls, RefillBatch(cls), &taken);
    slab_allocs_.fetch_add(static_cast<uint64_t>(taken),
                           std::memory_order_relaxed);
    node = chain;
    if (chain->next != nullptr) {
      FreeNode* rest = chain->next;
      FreeNode* tail = rest;
      while (tail->next != nullptr) tail = tail->next;
      shards_[static_cast<size_t>(my_shard)]->classes[cls].PushChain(rest,
                                                                     tail);
    }
  }
  b.data = reinterpret_cast<uint8_t*>(node);
  b.cap = ArenaAllocator::ClassBytes(cls);
  b.cls = static_cast<int8_t>(cls);
  b.shard = static_cast<int8_t>(my_shard);
  b.kind = Block::kSlab;
  return b;
}

void PageAllocator::Free(Block* block) {
  if (block == nullptr || !block->valid()) return;
  free_calls_.fetch_add(1, std::memory_order_relaxed);
  switch (block->kind) {
    case Block::kFallback:
      delete[] block->data;
      break;
    case Block::kDirect: {
      Mapping m;
      m.addr = block->data;
      m.bytes = block->map_bytes;
      arena_->UnmapDirect(m);
      direct_unmaps_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    case Block::kSlab: {
      const int my_shard = ShardForThisThread();
      if (my_shard != block->shard) {
        remote_frees_.fetch_add(1, std::memory_order_relaxed);
      }
      auto* node = reinterpret_cast<FreeNode*>(block->data);
      shards_[static_cast<size_t>(my_shard)]
          ->classes[block->cls]
          .Push(node);
      break;
    }
    case Block::kNone:
      DECA_CHECK(false) << "Free of an invalid block kind";
  }
  *block = Block{};
}

void PageAllocator::NoteAlloc(size_t bytes) {
  alloc_calls_.fetch_add(1, std::memory_order_relaxed);
  bytes_requested_.fetch_add(bytes, std::memory_order_relaxed);
}

void PageAllocator::NoteFree() {
  free_calls_.fetch_add(1, std::memory_order_relaxed);
}

AllocStats PageAllocator::Stats() const {
  AllocStats s;
  s.alloc_calls = alloc_calls_.load(std::memory_order_relaxed);
  s.free_calls = free_calls_.load(std::memory_order_relaxed);
  s.bytes_requested = bytes_requested_.load(std::memory_order_relaxed);
  s.slab_allocs = slab_allocs_.load(std::memory_order_relaxed);
  s.slab_reuses = slab_reuses_.load(std::memory_order_relaxed);
  s.freelist_steals = freelist_steals_.load(std::memory_order_relaxed);
  s.remote_frees = remote_frees_.load(std::memory_order_relaxed);
  s.direct_maps = direct_maps_.load(std::memory_order_relaxed);
  s.direct_unmaps = direct_unmaps_.load(std::memory_order_relaxed);
  return s;
}

void AddGlobalArenaStats(AllocStats* out) {
  ArenaAllocator* arena = ArenaAllocator::GlobalIfCreated();
  if (arena != nullptr) arena->AddGlobalStats(out);
}

std::shared_ptr<Bytes> Bytes::New(PageAllocator* pa, size_t n) {
  auto b = std::shared_ptr<Bytes>(new Bytes());
  if (pa != nullptr && n > 0) {
    b->pa_ = pa;
    b->block_ = pa->Allocate(n);
  } else {
    b->vec_.resize(n);
  }
  return b;
}

std::shared_ptr<const Bytes> Bytes::Copy(PageAllocator* pa,
                                         const uint8_t* src, size_t n) {
  auto b = New(pa, n);
  if (n > 0) std::memcpy(b->mutable_data(), src, n);
  return b;
}

std::shared_ptr<const Bytes> Bytes::FromWriter(PageAllocator* pa,
                                               std::vector<uint8_t> buf) {
  if (pa != nullptr && pa->arena_active()) {
    return Copy(pa, buf.data(), buf.size());
  }
  auto b = std::shared_ptr<Bytes>(new Bytes());
  b->vec_ = std::move(buf);
  if (pa != nullptr) {
    // Count the adoption so fallback-mode counters match the arena path.
    pa->NoteAlloc(b->vec_.size());
    b->pa_ = pa;
    b->counted_ = true;
  }
  return b;
}

Bytes::~Bytes() {
  if (block_.valid()) {
    pa_->Free(&block_);
  } else if (counted_) {
    pa_->NoteFree();
  }
}

ScratchBuffer::ScratchBuffer(ScratchBuffer&& o) noexcept
    : pa_(o.pa_), block_(o.block_), vec_(std::move(o.vec_)) {
  o.block_ = Block{};
}

ScratchBuffer& ScratchBuffer::operator=(ScratchBuffer&& o) noexcept {
  if (this != &o) {
    Release();
    pa_ = o.pa_;
    block_ = o.block_;
    vec_ = std::move(o.vec_);
    o.block_ = Block{};
  }
  return *this;
}

void ScratchBuffer::Reserve(size_t n) {
  if (n == 0 || n <= capacity()) return;
  if (pa_ != nullptr) {
    if (block_.valid()) pa_->Free(&block_);
    block_ = pa_->Allocate(n);
  } else {
    vec_.resize(n);
  }
}

void ScratchBuffer::Release() {
  if (pa_ != nullptr && block_.valid()) pa_->Free(&block_);
  vec_.clear();
  vec_.shrink_to_fit();
}

}  // namespace deca::alloc
