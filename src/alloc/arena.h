#ifndef DECA_ALLOC_ARENA_H_
#define DECA_ALLOC_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "alloc/sys_mem.h"

namespace deca::alloc {

/// Knobs for the arena plane. Embedded in SparkConfig (plain values, so the
/// job-spec codec can ship them to executor daemons) and parsed from the
/// DECA_ARENA* environment knobs by the bench harness.
struct ArenaOptions {
  bool enabled = false;                              // DECA_ARENA
  size_t chunk_bytes = 16u << 20;                    // DECA_ARENA_CHUNK_MB
  HugePageMode huge_pages = HugePageMode::kMadvise;  // DECA_ARENA_HUGEPAGES
  NumaPolicy numa_policy = NumaPolicy::kNone;        // DECA_NUMA_POLICY
};

/// Intrusive freelist node living in the first word of a free slab.
struct FreeNode {
  FreeNode* next = nullptr;
};

/// Point-in-time allocator counters. One struct serves three scopes —
/// per-PageAllocator handles, per-executor snapshots, and the run-level
/// aggregate — so `Add` must stay a plain field-wise sum.
///
/// The first three counters are *deterministic*: they are driven purely by
/// engine call sites (every consumer routes through a PageAllocator in both
/// DECA_ARENA modes), so they are bit-identical across arena on/off, thread
/// counts, and local vs process runs, and are exact-compared by report_diff.
/// Everything below the marker depends on timing, shard scheduling, or the
/// host kernel (THP acceptance) and is reported as informational only.
struct AllocStats {
  uint64_t alloc_calls = 0;
  uint64_t free_calls = 0;
  uint64_t bytes_requested = 0;

  // -- environment/timing dependent from here on --
  uint64_t slab_allocs = 0;       // slabs carved fresh from a chunk
  uint64_t slab_reuses = 0;       // allocs served from a freelist
  uint64_t freelist_steals = 0;   // allocs served by raiding a sibling shard
  uint64_t remote_frees = 0;      // frees pushed from a non-allocating thread
  uint64_t direct_maps = 0;       // over-max-class allocations mapped 1:1
  uint64_t direct_unmaps = 0;
  uint64_t chunks_mapped = 0;     // global arena overlay (not per-handle)
  uint64_t hugepage_chunks = 0;
  uint64_t arena_bytes_reserved = 0;

  void Add(const AllocStats& o);
};

/// Process-wide arena: maps chunk-sized anonymous regions (huge-page ladder
/// per ArenaOptions), carves them into power-of-two size-class slabs, and
/// keeps a mutex-protected central freelist per class so slabs outlive the
/// sharded PageAllocator handles that pool them. Large requests bypass the
/// classes entirely and get a dedicated mapping (unmapped on free, so every
/// direct block comes back zero-filled).
///
/// Thread safety: all public methods are safe to call concurrently; the hot
/// path is expected to go through PageAllocator shards, which only fall
/// back here when their freelists and steal targets are empty.
class ArenaAllocator {
 public:
  static constexpr size_t kMinClassBytes = 64;
  static constexpr size_t kMaxClassBytes = 4u << 20;
  static constexpr int kNumClasses = 17;  // 64B, 128B, ..., 4MB (pow2)

  /// Smallest class that fits `bytes`, or -1 when only a direct mapping
  /// will do (bytes > kMaxClassBytes).
  static int SizeClass(size_t bytes);
  static size_t ClassBytes(int cls);

  explicit ArenaAllocator(const ArenaOptions& options);
  ~ArenaAllocator();  // unmaps every chunk

  ArenaAllocator(const ArenaAllocator&) = delete;
  ArenaAllocator& operator=(const ArenaAllocator&) = delete;

  /// Pops up to `want` slabs of `cls`: central freelist first, then a fresh
  /// carve from the current chunk (mapping a new chunk when exhausted).
  /// Returns the head of a null-terminated chain and stores the count.
  FreeNode* TakeSlabs(int cls, int want, int* taken);

  /// Returns a chain of slabs to the central freelist (PageAllocator
  /// destruction, or shard overflow). Large slabs get ReleaseRange so the
  /// physical pages go back to the OS while the VA stays pooled.
  void ReturnSlabs(int cls, FreeNode* head);

  /// Dedicated zero-filled mapping for a request above kMaxClassBytes.
  Mapping MapDirect(size_t bytes, int numa_node);
  void UnmapDirect(const Mapping& m);

  const ArenaOptions& options() const { return options_; }

  /// Overlays the global (process-scope) fields onto `out`.
  void AddGlobalStats(AllocStats* out) const;

  /// True when every slab ever carved is back on a central freelist and all
  /// direct mappings are unmapped — the zero-leak invariant the lifecycle
  /// test asserts after tearing down executors.
  bool AllSlabsReturned() const;

  /// Process-global arena, created on first use with `options` (later
  /// callers share the existing instance regardless of their options; one
  /// process, one chunk geometry). Never destroyed: chunk mappings are
  /// process-lifetime by design and freelists keep slabs warm across
  /// SparkContext generations.
  static ArenaAllocator* Global(const ArenaOptions& options);

  /// The global arena if some earlier Global() call created it, else null.
  /// Lets stats overlays stay a no-op in DECA_ARENA=0 runs.
  static ArenaAllocator* GlobalIfCreated();

 private:
  struct Chunk {
    Mapping map;
    size_t bump = 0;  // carve offset
  };

  /// Carves up to `want` slabs from the bump region (mutex held).
  FreeNode* CarveLocked(int cls, int want, int* taken);

  ArenaOptions options_;

  mutable std::mutex mu_;
  std::vector<Chunk> chunks_;
  FreeNode* central_[kNumClasses] = {};
  uint64_t central_count_[kNumClasses] = {};
  uint64_t carved_count_[kNumClasses] = {};
  uint64_t chunks_mapped_ = 0;
  uint64_t hugepage_chunks_ = 0;
  uint64_t bytes_reserved_ = 0;
  uint64_t direct_maps_ = 0;
  uint64_t direct_unmaps_ = 0;
  uint64_t next_interleave_node_ = 0;  // NUMA seam bookkeeping
};

}  // namespace deca::alloc

#endif  // DECA_ALLOC_ARENA_H_
