#ifndef DECA_ANALYSIS_GLOBAL_CLASSIFIER_H_
#define DECA_ANALYSIS_GLOBAL_CLASSIFIER_H_

#include <unordered_map>

#include "analysis/local_classifier.h"
#include "analysis/method_ir.h"
#include "analysis/size_type.h"
#include "analysis/udt_type.h"

namespace deca::analysis {

/// The global classification analysis (paper Algorithm 2, with the SFST
/// and RFST refinements of Algorithms 3 and 4). Uses code analysis over
/// the scope's call graph to identify init-only fields and fixed-length
/// array types, breaking the local classifier's conservative assumptions.
class GlobalClassifier {
 public:
  explicit GlobalClassifier(const CallGraph* call_graph)
      : call_graph_(call_graph) {}

  /// Algorithm 2: local classification, then refinement. RecurDef types
  /// are never refined.
  SizeType Classify(const UdtType* t) const;

  /// Algorithm 3: can `t` be refined to StaticFixed? `ctx` is the field
  /// through which `t` is reached (needed for the fixed-length array
  /// query); null for the top-level type.
  bool SRefine(const UdtType* t, const FieldRef* ctx) const;

  /// Algorithm 4: can `t` be refined to RuntimeFixed?
  bool RRefine(const UdtType* t) const;

 private:
  const CallGraph* call_graph_;
  LocalClassifier local_;
};

/// Phased refinement (paper Section 3.4): classifies a type within each
/// execution phase of a job; types that are VSTs in an early phase may be
/// RFSTs or SFSTs in later phases once their objects stop being mutated.
class PhasedRefinement {
 public:
  /// `phase_graphs[i]` is the call graph of phase i.
  explicit PhasedRefinement(std::vector<const CallGraph*> phase_graphs)
      : phase_graphs_(std::move(phase_graphs)) {}

  /// Size-type of `t` within phase `phase`.
  SizeType ClassifyInPhase(const UdtType* t, size_t phase) const;

  /// Size-types across all phases.
  std::vector<SizeType> ClassifyAllPhases(const UdtType* t) const;

 private:
  std::vector<const CallGraph*> phase_graphs_;
};

}  // namespace deca::analysis

#endif  // DECA_ANALYSIS_GLOBAL_CLASSIFIER_H_
