#include "analysis/sym_expr.h"

#include <sstream>

namespace deca::analysis {

SymExpr SymExpr::Constant(int64_t value) {
  SymExpr e;
  e.unknown_ = false;
  e.constant_ = value;
  return e;
}

SymExpr SymExpr::Symbol(uint32_t id) {
  SymExpr e;
  e.unknown_ = false;
  e.coeffs_[id] = 1;
  return e;
}

SymExpr SymExpr::operator+(const SymExpr& other) const {
  if (unknown_ || other.unknown_) return Unknown();
  SymExpr r = *this;
  r.constant_ += other.constant_;
  for (const auto& [id, c] : other.coeffs_) {
    int64_t v = (r.coeffs_[id] += c);
    if (v == 0) r.coeffs_.erase(id);
  }
  return r;
}

SymExpr SymExpr::operator-(const SymExpr& other) const {
  return *this + (other * -1);
}

SymExpr SymExpr::operator*(int64_t k) const {
  if (unknown_) return Unknown();
  if (k == 0) return Constant(0);
  SymExpr r = *this;
  r.constant_ *= k;
  for (auto& [id, c] : r.coeffs_) c *= k;
  return r;
}

bool SymExpr::EquivalentTo(const SymExpr& other) const {
  if (unknown_ || other.unknown_) return false;
  return constant_ == other.constant_ && coeffs_ == other.coeffs_;
}

std::string SymExpr::ToString() const {
  if (unknown_) return "?";
  std::ostringstream os;
  os << constant_;
  for (const auto& [id, c] : coeffs_) {
    os << (c >= 0 ? "+" : "") << c << "*S" << id;
  }
  return os.str();
}

}  // namespace deca::analysis
