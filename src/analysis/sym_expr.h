#ifndef DECA_ANALYSIS_SYM_EXPR_H_
#define DECA_ANALYSIS_SYM_EXPR_H_

#include <cstdint>
#include <map>
#include <string>

namespace deca::analysis {

/// A symbolic integer expression used by the global classifier's
/// symbolized constant propagation (paper Figure 4): values read from the
/// program's input or returned by I/O are represented by opaque symbols,
/// and arithmetic over them is kept in the canonical affine form
/// `c0 + sum(ci * sym_i)`. Two array allocation sites have provably equal
/// lengths iff their SymExprs are equal.
class SymExpr {
 public:
  /// The unknown/non-affine expression (top of the lattice): never equal
  /// to anything, including itself.
  SymExpr() : unknown_(true) {}

  static SymExpr Constant(int64_t value);
  static SymExpr Symbol(uint32_t id);
  static SymExpr Unknown() { return SymExpr(); }

  bool is_unknown() const { return unknown_; }
  bool IsConstant() const { return !unknown_ && coeffs_.empty(); }
  /// Only valid when IsConstant().
  int64_t ConstantValue() const { return constant_; }

  SymExpr operator+(const SymExpr& other) const;
  SymExpr operator-(const SymExpr& other) const;
  /// Scaling by a compile-time constant.
  SymExpr operator*(int64_t k) const;

  /// Provable equality: both known and identical in canonical form.
  bool EquivalentTo(const SymExpr& other) const;

  std::string ToString() const;

 private:
  bool unknown_ = false;
  int64_t constant_ = 0;
  std::map<uint32_t, int64_t> coeffs_;  // symbol id -> coefficient
};

}  // namespace deca::analysis

#endif  // DECA_ANALYSIS_SYM_EXPR_H_
