#include "analysis/profiled_classifier.h"

#include "common/logging.h"
#include "jvm/heap.h"

namespace deca::analysis {

ProfiledClassifier::ProfiledClassifier(
    const jvm::AllocationSiteProfiler& profiler) {
  for (const auto& [class_id, st] : profiler.sites()) {
    SiteSummary s;
    s.sampled = st.sampled;
    s.observed = st.observed;
    s.size_min = st.size_min;
    s.size_max = st.size_max;
    s.survival_rate = profiler.SurvivalRate(class_id);
    sites_.emplace(class_id, s);
  }
}

SizeType ProfiledClassifier::Classify(uint32_t class_id) const {
  auto it = sites_.find(class_id);
  if (it == sites_.end() || it->second.sampled == 0) {
    return SizeType::kVariable;
  }
  if (it->second.size_min == it->second.size_max) {
    return SizeType::kStaticFixed;
  }
  return SizeType::kRuntimeFixed;
}

double ProfiledClassifier::SurvivalRate(uint32_t class_id) const {
  auto it = sites_.find(class_id);
  return it == sites_.end() ? 0.0 : it->second.survival_rate;
}

ProfiledClassifier CalibrateProfile(
    jvm::ClassRegistry* registry, const CalibrationOptions& opts,
    const std::function<jvm::ObjRef(jvm::Heap*)>& allocate_record) {
  DECA_CHECK_GT(opts.sample_bytes, 0u);
  jvm::HeapConfig hc;
  hc.heap_bytes = opts.heap_bytes;
  hc.algorithm = jvm::GcAlgorithm::kParallelScavenge;
  jvm::Heap heap(hc, registry);
  jvm::AllocationSiteProfiler profiler(opts.sample_bytes, opts.seed);
  heap.SetAllocProfiler(&profiler);
  // Retained records live in a root provider, not an outer HandleScope:
  // scopes are strictly nested, so an outer scope cannot grow while inner
  // per-record scopes open and close.
  jvm::VectorRootProvider retained;
  heap.AddRootProvider(&retained);
  for (uint64_t i = 0; i < opts.records; ++i) {
    jvm::HandleScope scope(&heap);
    jvm::ObjRef rec = allocate_record(&heap);
    if (opts.retain_every > 0 && i % opts.retain_every == 0) {
      retained.refs().push_back(rec);
    }
  }
  // A final scavenge so samples from the tail of the run (still sitting in
  // eden) get their survival observation.
  heap.CollectMinor();
  heap.SetAllocProfiler(nullptr);
  heap.RemoveRootProvider(&retained);
  return ProfiledClassifier(profiler);
}

}  // namespace deca::analysis
