#include "analysis/udt_type.h"

#include "common/logging.h"

namespace deca::analysis {

const UdtField& UdtType::field(const std::string& fname) const {
  for (const auto& f : fields_) {
    if (f.name == fname) return f;
  }
  DECA_LOG(Fatal) << "type " << name_ << " has no field " << fname;
  return fields_[0];
}

TypeUniverse::TypeUniverse() = default;

const UdtType* TypeUniverse::Primitive(jvm::FieldKind kind) {
  size_t idx = static_cast<size_t>(kind);
  if (primitives_[idx] == nullptr) {
    auto t = std::make_unique<UdtType>();
    t->kind_ = UdtType::Kind::kPrimitive;
    t->primitive_kind_ = kind;
    t->name_ = jvm::FieldKindName(kind);
    primitives_[idx] = t.get();
    types_.push_back(std::move(t));
  }
  return primitives_[idx];
}

const UdtType* TypeUniverse::DefineArray(
    const std::string& name, std::vector<const UdtType*> elem_types) {
  auto t = std::make_unique<UdtType>();
  t->kind_ = UdtType::Kind::kArray;
  t->name_ = name;
  // Array element fields are never final / init-only (paper footnote 1).
  t->element_field_ = {"<elem>", /*is_final=*/false, std::move(elem_types)};
  const UdtType* p = t.get();
  types_.push_back(std::move(t));
  return p;
}

UdtType* TypeUniverse::DefineClass(const std::string& name) {
  auto t = std::make_unique<UdtType>();
  t->kind_ = UdtType::Kind::kClass;
  t->name_ = name;
  UdtType* p = t.get();
  types_.push_back(std::move(t));
  return p;
}

void TypeUniverse::AddField(UdtType* cls, const std::string& fname,
                            bool is_final,
                            std::vector<const UdtType*> type_set) {
  DECA_CHECK(cls->kind_ == UdtType::Kind::kClass);
  DECA_CHECK(!type_set.empty()) << "field " << fname << " has empty type-set";
  cls->fields_.push_back({fname, is_final, std::move(type_set)});
}

const UdtType* TypeUniverse::Find(const std::string& name) const {
  for (const auto& t : types_) {
    if (t->name() == name) return t.get();
  }
  return nullptr;
}

}  // namespace deca::analysis
