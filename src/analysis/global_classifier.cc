#include "analysis/global_classifier.h"

namespace deca::analysis {

SizeType GlobalClassifier::Classify(const UdtType* t) const {
  SizeType local = local_.Classify(t);
  if (local == SizeType::kRecurDef) return local;
  // Algorithm 2.
  if (SRefine(t, /*ctx=*/nullptr)) return SizeType::kStaticFixed;
  if (local == SizeType::kRuntimeFixed || RRefine(t)) {
    return SizeType::kRuntimeFixed;
  }
  return SizeType::kVariable;
}

bool GlobalClassifier::SRefine(const UdtType* t, const FieldRef* ctx) const {
  // Algorithm 3. Primitive types are trivially static fixed.
  if (t->is_primitive()) return true;
  if (t->is_array()) {
    // Line 7: the array itself must be fixed-length w.r.t. the field it is
    // reached through.
    if (ctx == nullptr) return false;
    if (!call_graph_->IsFixedLengthArray(t, *ctx)) return false;
    // Lines 2-6 for the element field: every element runtime type must be
    // static fixed.
    FieldRef elem_ref{t, t->element_field().name};
    for (const UdtType* et : t->element_field().type_set) {
      if (!et->is_primitive() && !SRefine(et, &elem_ref)) return false;
    }
    return true;
  }
  for (const auto& f : t->fields()) {
    FieldRef fr{t, f.name};
    for (const UdtType* ft : f.type_set) {
      if (!ft->is_primitive() && !SRefine(ft, &fr)) return false;
    }
  }
  return true;
}

bool GlobalClassifier::RRefine(const UdtType* t) const {
  // Algorithm 4.
  if (t->is_primitive()) return true;
  if (t->is_array()) {
    // Lemma 2 + footnote: array element fields are never init-only, so an
    // array is runtime fixed only when every element type is SFST (which
    // the local classifier already recognizes) — an element type that is
    // merely RFST would let element assignments change the data-size.
    FieldRef elem_ref{t, t->element_field().name};
    for (const UdtType* et : t->element_field().type_set) {
      if (!et->is_primitive() && !SRefine(et, &elem_ref)) return false;
    }
    return true;
  }
  for (const auto& f : t->fields()) {
    FieldRef fr{t, f.name};
    bool needs_init_only = false;
    for (const UdtType* ft : f.type_set) {
      if (ft->is_primitive()) continue;
      if (SRefine(ft, &fr)) continue;
      if (RRefine(ft)) {
        needs_init_only = true;
      } else {
        return false;
      }
    }
    if (needs_init_only && !call_graph_->IsInitOnly(fr)) return false;
  }
  return true;
}

// GCC at -O3 inlines Classify into this wrapper and then falsely reports
// `classifier` maybe-uninitialized (its only member is a pointer set in
// the constructor) — a reachability false positive.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
SizeType PhasedRefinement::ClassifyInPhase(const UdtType* t,
                                           size_t phase) const {
  GlobalClassifier classifier(phase_graphs_[phase]);
  return classifier.Classify(t);
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

std::vector<SizeType> PhasedRefinement::ClassifyAllPhases(
    const UdtType* t) const {
  std::vector<SizeType> result;
  result.reserve(phase_graphs_.size());
  for (size_t i = 0; i < phase_graphs_.size(); ++i) {
    result.push_back(ClassifyInPhase(t, i));
  }
  return result;
}

}  // namespace deca::analysis
