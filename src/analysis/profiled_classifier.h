#ifndef DECA_ANALYSIS_PROFILED_CLASSIFIER_H_
#define DECA_ANALYSIS_PROFILED_CLASSIFIER_H_

#include <cstdint>
#include <functional>
#include <map>

#include "analysis/size_type.h"
#include "jvm/heap_profiler.h"
#include "jvm/object_model.h"

namespace deca::jvm {
class ClassRegistry;
class Heap;
}  // namespace deca::jvm

namespace deca::analysis {

/// Online counterpart of GlobalClassifier: derives per-class size-types
/// from an AllocationSiteProfiler's observed site table instead of static
/// UDT/code analysis. The evidence is weaker than the static proof — a
/// constant observed size is consistent with SFST but does not prove it —
/// so workloads cross-check the profiled verdict against the static one
/// before gating the decomposed path on it (DECA_LIFETIME_SOURCE=profiled).
class ProfiledClassifier {
 public:
  struct SiteSummary {
    uint64_t sampled = 0;    // sampled allocations of the class
    uint64_t observed = 0;   // samples observed at their first evacuation
    uint32_t size_min = 0;   // smallest sampled instance (bytes)
    uint32_t size_max = 0;   // largest sampled instance (bytes)
    double survival_rate = 0.0;  // observed / sampled
  };

  ProfiledClassifier() = default;

  /// Snapshots the profiler's site table; the profiler may be destroyed
  /// afterwards.
  explicit ProfiledClassifier(const jvm::AllocationSiteProfiler& profiler);

  /// Size-type of `class_id` from profile evidence alone: every sampled
  /// instance the same size -> SFST evidence; differing instance sizes ->
  /// RFST (instances in this object model never grow after construction,
  /// so per-instance sizes are fixed); never sampled -> no evidence,
  /// conservatively VST.
  SizeType Classify(uint32_t class_id) const;

  /// Fraction of sampled instances of `class_id` observed surviving an
  /// evacuation (0 when the class was never sampled). Low rates indicate
  /// die-young, region-scoped lifetimes.
  double SurvivalRate(uint32_t class_id) const;

  const std::map<uint32_t, SiteSummary>& sites() const { return sites_; }

 private:
  std::map<uint32_t, SiteSummary> sites_;
};

/// Parameters of one profiling calibration run (a small scratch heap
/// exercised with representative record allocations).
struct CalibrationOptions {
  size_t heap_bytes = 4u << 20;  // scratch heap size
  uint64_t records = 2048;       // records to allocate
  uint64_t retain_every = 4;     // every Kth record stays live across minors
  size_t sample_bytes = 512;     // profiler sampling period
  uint64_t seed = 1;             // profiler seed (initial countdown offset)
};

/// Runs `allocate_record` `opts.records` times in a scratch
/// ParallelScavenge heap with an AllocationSiteProfiler attached and
/// returns the resulting classifier. Every `retain_every`-th record is
/// pinned in a root provider so eden pressure drives real minor
/// collections and the profiler observes survival, not just allocation.
/// The scratch heap shares `registry`, so the summarized class ids match
/// the executor heaps'; the executors themselves are never touched.
ProfiledClassifier CalibrateProfile(
    jvm::ClassRegistry* registry, const CalibrationOptions& opts,
    const std::function<jvm::ObjRef(jvm::Heap*)>& allocate_record);

}  // namespace deca::analysis

#endif  // DECA_ANALYSIS_PROFILED_CLASSIFIER_H_
