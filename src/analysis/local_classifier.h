#ifndef DECA_ANALYSIS_LOCAL_CLASSIFIER_H_
#define DECA_ANALYSIS_LOCAL_CLASSIFIER_H_

#include "analysis/size_type.h"
#include "analysis/udt_type.h"

namespace deca::analysis {

/// The local classification analysis (paper Algorithm 1): determines a
/// UDT's size-type purely from its type dependency graph, without any code
/// analysis. Conservative: a non-final field whose type-set contains an
/// RFST makes the enclosing type a VST, and arrays are at best RFSTs.
class LocalClassifier {
 public:
  /// Returns the size-type of the top-level annotated type `t`.
  SizeType Classify(const UdtType* t) const;

  /// True if `t`'s type dependency graph contains a cycle (the type is
  /// recursively defined).
  bool IsRecursivelyDefined(const UdtType* t) const;

 private:
  SizeType AnalyzeType(const UdtType* t) const;
  SizeType AnalyzeField(const UdtField& f) const;
};

}  // namespace deca::analysis

#endif  // DECA_ANALYSIS_LOCAL_CLASSIFIER_H_
