#include "analysis/method_ir.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"

namespace deca::analysis {

void CallGraph::AddMethod(MethodInfo method) {
  DECA_CHECK(by_name_.count(method.name) == 0)
      << "duplicate method " << method.name;
  by_name_[method.name] = methods_.size();
  methods_.push_back(std::move(method));
}

void CallGraph::SetEntry(const std::string& name) {
  DECA_CHECK(by_name_.count(name) != 0) << "unknown entry " << name;
  entry_ = name;
}

const MethodInfo* CallGraph::Find(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : &methods_[it->second];
}

std::vector<const MethodInfo*> CallGraph::ReachableMethods() const {
  std::vector<const MethodInfo*> result;
  if (entry_.empty()) return result;
  std::unordered_set<const MethodInfo*> seen;
  std::vector<const MethodInfo*> stack{Find(entry_)};
  seen.insert(stack[0]);
  while (!stack.empty()) {
    const MethodInfo* m = stack.back();
    stack.pop_back();
    result.push_back(m);
    for (const auto& s : m->statements) {
      if (s.kind != Statement::Kind::kCall) continue;
      const MethodInfo* callee = Find(s.callee);
      if (callee != nullptr && seen.insert(callee).second) {
        stack.push_back(callee);
      }
    }
  }
  return result;
}

bool CallGraph::IsFixedLengthArray(const UdtType* a, const FieldRef& f) const {
  bool found_site = false;
  SymExpr common;
  for (const MethodInfo* m : ReachableMethods()) {
    for (const auto& s : m->statements) {
      if (s.kind != Statement::Kind::kNewArrayAssign) continue;
      if (s.array_type != a || !(s.target == f)) continue;
      if (!found_site) {
        common = s.length;
        found_site = true;
      } else if (!common.EquivalentTo(s.length)) {
        return false;
      }
    }
  }
  // With no allocation site in scope the lengths are unconstrained by this
  // scope's code; be conservative.
  return found_site && !common.is_unknown();
}

std::vector<const UdtType*> CallGraph::InferTypeSet(const FieldRef& f) const {
  std::vector<const UdtType*> types;
  for (const MethodInfo* m : ReachableMethods()) {
    for (const auto& s : m->statements) {
      if ((s.kind != Statement::Kind::kNewArrayAssign &&
           s.kind != Statement::Kind::kNewObjectAssign) ||
          !(s.target == f) || s.array_type == nullptr) {
        continue;
      }
      if (std::find(types.begin(), types.end(), s.array_type) ==
          types.end()) {
        types.push_back(s.array_type);
      }
    }
  }
  return types;
}

bool CallGraph::IsInitOnly(const FieldRef& f) const {
  // Rule 2: array element fields are never init-only.
  if (f.owner->is_array()) return false;
  // Rule 1: final fields are init-only.
  if (!f.owner->is_primitive()) {
    for (const auto& fd : f.owner->fields()) {
      if (fd.name == f.field && fd.is_final) return true;
    }
  }
  // Rule 3: assigned only in constructors of the declaring type, and at
  // most once along any constructor calling sequence.
  std::vector<const MethodInfo*> ctors;
  for (const MethodInfo* m : ReachableMethods()) {
    bool assigns = false;
    for (const auto& s : m->statements) {
      if ((s.kind == Statement::Kind::kFieldAssign ||
           s.kind == Statement::Kind::kNewArrayAssign ||
           s.kind == Statement::Kind::kNewObjectAssign) &&
          s.target == f) {
        assigns = true;
      }
    }
    if (m->ctor_of == f.owner) {
      ctors.push_back(m);
    } else if (assigns) {
      return false;  // assigned outside a constructor
    }
  }
  for (const MethodInfo* c : ctors) {
    if (AssignmentsInClosure(c, f) > 1) return false;
  }
  return true;
}

int CallGraph::AssignmentsInClosure(const MethodInfo* m,
                                    const FieldRef& f) const {
  std::unordered_set<const MethodInfo*> seen{m};
  std::vector<const MethodInfo*> stack{m};
  int count = 0;
  while (!stack.empty()) {
    const MethodInfo* cur = stack.back();
    stack.pop_back();
    for (const auto& s : cur->statements) {
      if ((s.kind == Statement::Kind::kFieldAssign ||
           s.kind == Statement::Kind::kNewArrayAssign ||
           s.kind == Statement::Kind::kNewObjectAssign) &&
          s.target == f) {
        ++count;
      }
      if (s.kind == Statement::Kind::kCall) {
        const MethodInfo* callee = Find(s.callee);
        if (callee != nullptr && seen.insert(callee).second) {
          stack.push_back(callee);
        }
      }
    }
  }
  return count;
}

}  // namespace deca::analysis
