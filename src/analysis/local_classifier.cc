#include "analysis/local_classifier.h"

#include <unordered_set>

namespace deca::analysis {

const char* SizeTypeName(SizeType s) {
  switch (s) {
    case SizeType::kStaticFixed:
      return "SFST";
    case SizeType::kRuntimeFixed:
      return "RFST";
    case SizeType::kVariable:
      return "VST";
    case SizeType::kRecurDef:
      return "RecurDef";
  }
  return "?";
}

namespace {

/// DFS cycle detection over the type dependency graph (edges: class ->
/// field type-set members, array -> element type-set members).
bool HasCycle(const UdtType* t, std::unordered_set<const UdtType*>* on_path,
              std::unordered_set<const UdtType*>* done) {
  if (t->is_primitive()) return false;
  if (done->count(t) != 0) return false;
  if (!on_path->insert(t).second) return true;
  bool cycle = false;
  auto visit_field = [&](const UdtField& f) {
    for (const UdtType* ft : f.type_set) {
      if (HasCycle(ft, on_path, done)) cycle = true;
    }
  };
  if (t->is_array()) {
    visit_field(t->element_field());
  } else {
    for (const auto& f : t->fields()) visit_field(f);
  }
  on_path->erase(t);
  done->insert(t);
  return cycle;
}

}  // namespace

bool LocalClassifier::IsRecursivelyDefined(const UdtType* t) const {
  std::unordered_set<const UdtType*> on_path;
  std::unordered_set<const UdtType*> done;
  return HasCycle(t, &on_path, &done);
}

SizeType LocalClassifier::Classify(const UdtType* t) const {
  // Algorithm 1 lines 1-3: recursively-defined types first.
  if (IsRecursivelyDefined(t)) return SizeType::kRecurDef;
  return AnalyzeType(t);
}

SizeType LocalClassifier::AnalyzeType(const UdtType* t) const {
  // Algorithm 1, AnalyzeType (lines 4-22).
  if (t->is_primitive()) return SizeType::kStaticFixed;
  if (t->is_array()) {
    // Arrays of static fixed-sized elements are runtime fixed (different
    // instances have different lengths); anything else is variable.
    if (AnalyzeField(t->element_field()) == SizeType::kStaticFixed) {
      return SizeType::kRuntimeFixed;
    }
    return SizeType::kVariable;
  }
  SizeType result = SizeType::kStaticFixed;
  for (const auto& f : t->fields()) {
    SizeType tmp = AnalyzeField(f);
    if (tmp == SizeType::kVariable) return SizeType::kVariable;
    if (tmp == SizeType::kRuntimeFixed) result = SizeType::kRuntimeFixed;
  }
  return result;
}

SizeType LocalClassifier::AnalyzeField(const UdtField& f) const {
  // Algorithm 1, AnalyzeField (lines 23-34).
  SizeType result = SizeType::kStaticFixed;
  for (const UdtType* t : f.type_set) {
    SizeType tmp = AnalyzeType(t);
    if (tmp == SizeType::kVariable) return SizeType::kVariable;
    if (tmp == SizeType::kRuntimeFixed) {
      // A non-final field can be re-pointed at objects with different
      // data-sizes, so it degrades to variable (Algorithm 1 lines 28-30).
      if (!f.is_final) return SizeType::kVariable;
      result = SizeType::kRuntimeFixed;
    }
  }
  return result;
}

}  // namespace deca::analysis
