#ifndef DECA_ANALYSIS_SIZE_TYPE_H_
#define DECA_ANALYSIS_SIZE_TYPE_H_

namespace deca::analysis {

/// The size-type lattice of paper Section 3.1, totally ordered by
/// variability: SFST < RFST < VST. Recursively-defined types are outside
/// the order and never decomposable.
enum class SizeType {
  kStaticFixed,   // SFST: all instances have one identical, constant size
  kRuntimeFixed,  // RFST: each instance's size is fixed once constructed
  kVariable,      // VST: size may change after construction
  kRecurDef,      // type-dependency cycle; cannot be decomposed
};

const char* SizeTypeName(SizeType s);

/// True when objects of this size-type may be decomposed into byte
/// sequences (paper Section 3.1: SFST or RFST).
inline bool IsDecomposable(SizeType s) {
  return s == SizeType::kStaticFixed || s == SizeType::kRuntimeFixed;
}

}  // namespace deca::analysis

#endif  // DECA_ANALYSIS_SIZE_TYPE_H_
