#ifndef DECA_ANALYSIS_UDT_TYPE_H_
#define DECA_ANALYSIS_UDT_TYPE_H_

#include <memory>
#include <string>
#include <vector>

#include "jvm/object_model.h"

namespace deca::analysis {

class UdtType;

/// One declared field of an annotated UDT. `type_set` is the set of
/// possible *runtime* types of the objects this field can reference,
/// obtained in the paper by points-to analysis; here it is declared by the
/// workload's type model. Primitive fields have a single primitive type in
/// their set.
struct UdtField {
  std::string name;
  bool is_final = false;
  std::vector<const UdtType*> type_set;
};

/// An annotated type: the input to the classification analyses (paper
/// Section 3). Exactly one of the three kinds:
///  - primitive: a fixed-size scalar;
///  - array: a length plus an element field whose type_set lists the
///    possible element types;
///  - class: a list of named fields.
class UdtType {
 public:
  enum class Kind { kPrimitive, kArray, kClass };

  Kind kind() const { return kind_; }
  const std::string& name() const { return name_; }
  jvm::FieldKind primitive_kind() const { return primitive_kind_; }
  bool is_primitive() const { return kind_ == Kind::kPrimitive; }
  bool is_array() const { return kind_ == Kind::kArray; }

  /// Array element pseudo-field (paper: "we treat each array type as
  /// having a length field and an element field").
  const UdtField& element_field() const { return element_field_; }

  const std::vector<UdtField>& fields() const { return fields_; }
  const UdtField& field(const std::string& fname) const;

 private:
  friend class TypeUniverse;
  Kind kind_ = Kind::kClass;
  std::string name_;
  jvm::FieldKind primitive_kind_ = jvm::FieldKind::kInt;
  UdtField element_field_;
  std::vector<UdtField> fields_;
};

/// Owns and interns UdtType nodes for one analysis run.
class TypeUniverse {
 public:
  TypeUniverse();

  /// Returns the interned primitive type for `kind`.
  const UdtType* Primitive(jvm::FieldKind kind);

  /// Defines an array type whose elements may be any type in `elem_types`.
  const UdtType* DefineArray(const std::string& name,
                             std::vector<const UdtType*> elem_types);

  /// Defines a class type. Use AddField to populate (two-phase so that
  /// recursive types can be expressed).
  UdtType* DefineClass(const std::string& name);

  /// Appends a field to a class previously created with DefineClass.
  void AddField(UdtType* cls, const std::string& fname, bool is_final,
                std::vector<const UdtType*> type_set);

  const UdtType* Find(const std::string& name) const;

 private:
  std::vector<std::unique_ptr<UdtType>> types_;
  const UdtType* primitives_[9] = {nullptr};
};

}  // namespace deca::analysis

#endif  // DECA_ANALYSIS_UDT_TYPE_H_
