#ifndef DECA_ANALYSIS_METHOD_IR_H_
#define DECA_ANALYSIS_METHOD_IR_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/sym_expr.h"
#include "analysis/udt_type.h"

namespace deca::analysis {

/// A field reference: the declaring class (or array type) plus field name.
struct FieldRef {
  const UdtType* owner = nullptr;
  std::string field;

  bool operator==(const FieldRef& o) const {
    return owner == o.owner && field == o.field;
  }
};

/// One classification-relevant statement in the mini method IR. In the
/// paper Deca extracts this information from JVM bytecode with Soot; here
/// workloads declare their UDF/UDT code shape directly in the same terms.
struct Statement {
  enum class Kind {
    /// `ref.field = new A[len]` — array allocation site assigned to a
    /// field. `array_type` is A, `length` the symbolic length.
    kNewArrayAssign,
    /// `ref.field = <expr>` — any other assignment to the field.
    kFieldAssign,
    /// `ref.field = new T(...)` — object allocation site assigned to a
    /// field (consumed by the points-to type-set inference).
    kNewObjectAssign,
    /// Invocation of another method in the analysis scope.
    kCall,
  };

  Kind kind;
  FieldRef target;                     // assignments
  const UdtType* array_type = nullptr; // kNewArrayAssign / kNewObjectAssign:
                                       // the allocated runtime type
  SymExpr length;                      // kNewArrayAssign
  std::string callee;                  // kCall
};

/// A method in the analysis scope: UDF, UDT method or constructor.
struct MethodInfo {
  std::string name;
  /// Set when the method is a constructor of `ctor_of`.
  const UdtType* ctor_of = nullptr;
  std::vector<Statement> statements;
};

/// The call graph of one analysis scope (a job stage, or a single phase
/// for phased refinement). The entry node is the scope's main method; only
/// methods reachable from it are consulted by the global classifier.
class CallGraph {
 public:
  /// Adds a method; names must be unique.
  void AddMethod(MethodInfo method);

  /// Sets the entry method (must have been added).
  void SetEntry(const std::string& name);

  /// Methods reachable from the entry (in discovery order).
  std::vector<const MethodInfo*> ReachableMethods() const;

  const MethodInfo* Find(const std::string& name) const;

  // -- classification queries (paper Section 3.3) --------------------------

  /// True when array type `a` is fixed-length w.r.t. field `f`: there is at
  /// least one allocation site of `a` assigned to `f` in the reachable
  /// methods, and all such sites have provably equal symbolic lengths.
  bool IsFixedLengthArray(const UdtType* a, const FieldRef& f) const;

  /// True when `f` is init-only: (1) final fields are init-only; (2) array
  /// element fields never are; (3) otherwise the field must be assigned
  /// only inside constructors of its declaring type, at most once along
  /// any constructor calling sequence.
  bool IsInitOnly(const FieldRef& f) const;

  /// Points-to-style type-set inference (the paper's pre-processing
  /// phase, built with Soot): the set of runtime types allocated and
  /// assigned to `f` anywhere in the reachable methods. An empty result
  /// means no allocation site was observed (the field's declared type-set
  /// must be used instead).
  std::vector<const UdtType*> InferTypeSet(const FieldRef& f) const;

 private:
  /// Total number of assignments to `f` along the call closure of `m`.
  int AssignmentsInClosure(const MethodInfo* m, const FieldRef& f) const;

  std::vector<MethodInfo> methods_;
  std::unordered_map<std::string, size_t> by_name_;
  std::string entry_;
};

}  // namespace deca::analysis

#endif  // DECA_ANALYSIS_METHOD_IR_H_
