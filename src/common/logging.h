#ifndef DECA_COMMON_LOGGING_H_
#define DECA_COMMON_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace deca {

/// Severity levels for the lightweight logger. kFatal aborts the process
/// after emitting the message.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Returns the process-wide minimum severity that is actually emitted.
LogLevel MinLogLevel();

/// Sets the process-wide minimum severity. Messages below `level` are
/// swallowed (their stream arguments are still evaluated).
void SetMinLogLevel(LogLevel level);

namespace internal {

/// Accumulates one log line and flushes it (with file/line prefix) on
/// destruction. Not for direct use; see the DECA_LOG / DECA_CHECK macros.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

/// Swallows a log stream when the message is compiled out or filtered.
struct LogMessageVoidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace deca

#define DECA_LOG_INTERNAL(level) \
  ::deca::internal::LogMessage(level, __FILE__, __LINE__).stream()

#define DECA_LOG(severity)                                             \
  (::deca::LogLevel::k##severity < ::deca::MinLogLevel())              \
      ? (void)0                                                        \
      : ::deca::internal::LogMessageVoidify() &                        \
            DECA_LOG_INTERNAL(::deca::LogLevel::k##severity)

/// Always-on invariant check; logs the failed condition and aborts.
#define DECA_CHECK(cond)                                            \
  (cond) ? (void)0                                                  \
         : ::deca::internal::LogMessageVoidify() &                  \
               DECA_LOG_INTERNAL(::deca::LogLevel::kFatal)          \
                   << "Check failed: " #cond " "

#define DECA_CHECK_OP(a, b, op)                                          \
  ((a)op(b)) ? (void)0                                                   \
             : ::deca::internal::LogMessageVoidify() &                   \
                   DECA_LOG_INTERNAL(::deca::LogLevel::kFatal)           \
                       << "Check failed: " #a " " #op " " #b " (" << (a) \
                       << " vs " << (b) << ") "

#define DECA_CHECK_EQ(a, b) DECA_CHECK_OP(a, b, ==)
#define DECA_CHECK_NE(a, b) DECA_CHECK_OP(a, b, !=)
#define DECA_CHECK_LT(a, b) DECA_CHECK_OP(a, b, <)
#define DECA_CHECK_LE(a, b) DECA_CHECK_OP(a, b, <=)
#define DECA_CHECK_GT(a, b) DECA_CHECK_OP(a, b, >)
#define DECA_CHECK_GE(a, b) DECA_CHECK_OP(a, b, >=)

#ifdef NDEBUG
#define DECA_DCHECK(cond) DECA_CHECK(true || (cond))
#define DECA_DCHECK_EQ(a, b) DECA_DCHECK((a) == (b))
#define DECA_DCHECK_LT(a, b) DECA_DCHECK((a) < (b))
#define DECA_DCHECK_LE(a, b) DECA_DCHECK((a) <= (b))
#else
#define DECA_DCHECK(cond) DECA_CHECK(cond)
#define DECA_DCHECK_EQ(a, b) DECA_CHECK_EQ(a, b)
#define DECA_DCHECK_LT(a, b) DECA_CHECK_LT(a, b)
#define DECA_DCHECK_LE(a, b) DECA_CHECK_LE(a, b)
#endif

#endif  // DECA_COMMON_LOGGING_H_
