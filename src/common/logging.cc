#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>

namespace deca {
namespace {

std::atomic<LogLevel> g_min_level{LogLevel::kWarning};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

LogLevel MinLogLevel() { return g_min_level.load(std::memory_order_relaxed); }

void SetMinLogLevel(LogLevel level) {
  g_min_level.store(level, std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level_), Basename(file_),
               line_, stream_.str().c_str());
  if (level_ == LogLevel::kFatal) {
    std::fflush(stderr);
    std::abort();
  }
}

}  // namespace internal
}  // namespace deca
