#ifndef DECA_COMMON_RANDOM_H_
#define DECA_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace deca {

/// Deterministic, fast pseudo-random generator (xoshiro256** seeded via
/// splitmix64). All data generators in the repository draw from this so
/// experiments are reproducible across runs and platforms.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Returns the next raw 64-bit value.
  uint64_t Next();

  /// Returns a uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Returns a uniform double in [0, 1).
  double NextDouble();

  /// Returns a uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Returns a standard-normal variate (Box–Muller).
  double NextGaussian();

  /// Fills `out` with `n` uniform doubles in [lo, hi).
  void FillUniform(double* out, size_t n, double lo, double hi);

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

/// Samples integers in [0, n) with a Zipf(s) distribution; used by the
/// word-count text generator to produce skewed key popularity.
class ZipfSampler {
 public:
  /// Builds the inverse-CDF table for `n` distinct items with exponent `s`.
  ZipfSampler(uint64_t n, double s, uint64_t seed);

  /// Draws one sample (a rank in [0, n), rank 0 most popular).
  uint64_t Next();

  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  Rng rng_;
  std::vector<double> cdf_;  // cumulative probabilities, size n (capped)
  bool exact_;               // true when cdf_ covers all n items
  double head_mass_;         // probability mass covered by cdf_ when !exact_
};

}  // namespace deca

#endif  // DECA_COMMON_RANDOM_H_
