#include "common/random.h"

#include <cmath>

#include "common/logging.h"

namespace deca {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// Largest inverse-CDF table we materialize for Zipf sampling; beyond this
// the tail is approximated by a uniform draw over the remaining ranks.
constexpr uint64_t kMaxZipfTable = 1u << 22;

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  DECA_DCHECK(bound > 0);
  // Lemire's multiply-shift rejection method.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t lo = static_cast<uint64_t>(m);
  if (lo < bound) {
    uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  while (u1 <= 1e-300) u1 = NextDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

void Rng::FillUniform(double* out, size_t n, double lo, double hi) {
  for (size_t i = 0; i < n; ++i) out[i] = NextDouble(lo, hi);
}

ZipfSampler::ZipfSampler(uint64_t n, double s, uint64_t seed)
    : n_(n), rng_(seed) {
  DECA_CHECK(n > 0);
  uint64_t table = n < kMaxZipfTable ? n : kMaxZipfTable;
  exact_ = table == n;
  cdf_.resize(table);
  double sum = 0.0;
  for (uint64_t i = 0; i < table; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = sum;
  }
  // Estimate the total mass of the full distribution via the integral tail
  // bound so truncated tables still produce roughly correct head frequency.
  double total = sum;
  if (!exact_) {
    if (s == 1.0) {
      total += std::log(static_cast<double>(n) / static_cast<double>(table));
    } else {
      total += (std::pow(static_cast<double>(n), 1.0 - s) -
                std::pow(static_cast<double>(table), 1.0 - s)) /
               (1.0 - s);
    }
  }
  for (auto& c : cdf_) c /= total;
  head_mass_ = sum / total;
}

uint64_t ZipfSampler::Next() {
  double u = rng_.NextDouble();
  if (!exact_ && u >= head_mass_) {
    // Tail: approximate as uniform over the untabulated ranks.
    return cdf_.size() + rng_.NextBounded(n_ - cdf_.size());
  }
  // Binary search the inverse CDF.
  size_t lo = 0;
  size_t hi = cdf_.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo < cdf_.size() ? lo : cdf_.size() - 1;
}

}  // namespace deca
