#include "common/table_printer.h"

#include <cstdio>

#include "common/logging.h"

namespace deca {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  DECA_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }
  std::string out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out += c == 0 ? "| " : " | ";
      out += row[c];
      out.append(widths[c] - row[c].size(), ' ');
    }
    out += " |\n";
  };
  emit_row(headers_);
  for (size_t c = 0; c < headers_.size(); ++c) {
    out += c == 0 ? "|" : "+";
    out.append(widths[c] + 2, '-');
  }
  out += "|\n";
  for (const auto& row : rows_) emit_row(row);
  return out;
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string TablePrinter::Num(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

}  // namespace deca
