#include "common/bytes.h"

#include <cstdio>

#include "common/logging.h"

namespace deca {

void ByteWriter::WriteVarU64(uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<uint8_t>(v));
}

void ByteWriter::WriteVarI64(int64_t v) {
  WriteVarU64((static_cast<uint64_t>(v) << 1) ^
              static_cast<uint64_t>(v >> 63));
}

void ByteWriter::WriteBytes(const uint8_t* data, size_t n) {
  // An empty write may pass a null source (empty vector's data()).
  if (n == 0) return;
  buf_.insert(buf_.end(), data, data + n);
}

void ByteWriter::WriteString(const std::string& s) {
  WriteVarU64(s.size());
  WriteBytes(reinterpret_cast<const uint8_t*>(s.data()), s.size());
}

uint64_t ByteReader::ReadVarU64() {
  uint64_t result = 0;
  int shift = 0;
  while (true) {
    DECA_DCHECK(pos_ < size_);
    uint8_t b = data_[pos_++];
    result |= static_cast<uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) break;
    shift += 7;
  }
  return result;
}

int64_t ByteReader::ReadVarI64() {
  uint64_t u = ReadVarU64();
  return static_cast<int64_t>((u >> 1) ^ (~(u & 1) + 1));
}

void ByteReader::ReadBytes(uint8_t* out, size_t n) {
  DECA_DCHECK(pos_ + n <= size_);
  // An empty read may pass a null destination (empty vector's data()).
  if (n == 0) return;
  std::memcpy(out, data_ + pos_, n);
  pos_ += n;
}

std::string ByteReader::ReadString() {
  size_t n = ReadVarU64();
  DECA_DCHECK(pos_ + n <= size_);
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return s;
}

std::string HumanBytes(uint64_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  char buf[32];
  if (u == 0) {
    std::snprintf(buf, sizeof(buf), "%.0f%s", v, units[u]);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f%s", v, units[u]);
  }
  return buf;
}

}  // namespace deca
