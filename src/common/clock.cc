#include "common/clock.h"

namespace deca {

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Stopwatch::Stopwatch() { Restart(); }

void Stopwatch::Restart() {
  accumulated_ = 0;
  started_at_ = NowNanos();
  running_ = true;
}

void Stopwatch::Stop() {
  if (!running_) return;
  accumulated_ += NowNanos() - started_at_;
  running_ = false;
}

void Stopwatch::Start() {
  if (running_) return;
  started_at_ = NowNanos();
  running_ = true;
}

int64_t Stopwatch::ElapsedNanos() const {
  int64_t total = accumulated_;
  if (running_) total += NowNanos() - started_at_;
  return total;
}

double Stopwatch::ElapsedMillis() const {
  return static_cast<double>(ElapsedNanos()) / 1e6;
}

}  // namespace deca
