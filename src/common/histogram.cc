#include "common/histogram.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace deca {

void Histogram::Add(double value) {
  samples_.push_back(value);
  sum_ += value;
  sorted_ = false;
}

double Histogram::Mean() const {
  return samples_.empty() ? 0.0 : sum_ / static_cast<double>(samples_.size());
}

double Histogram::Min() const {
  return samples_.empty()
             ? 0.0
             : *std::min_element(samples_.begin(), samples_.end());
}

double Histogram::Max() const {
  return samples_.empty()
             ? 0.0
             : *std::max_element(samples_.begin(), samples_.end());
}

double Histogram::Percentile(double p) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  size_t lo = static_cast<size_t>(std::floor(rank));
  size_t hi = static_cast<size_t>(std::ceil(rank));
  double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

}  // namespace deca
