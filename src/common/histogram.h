#ifndef DECA_COMMON_HISTOGRAM_H_
#define DECA_COMMON_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace deca {

/// Running summary statistics with exact percentiles (keeps all samples;
/// intended for per-task / per-GC measurements, not high-frequency events).
class Histogram {
 public:
  void Add(double value);

  size_t count() const { return samples_.size(); }
  double sum() const { return sum_; }
  double Mean() const;
  double Min() const;
  double Max() const;
  /// Exact percentile (nearest-rank); `p` in [0, 100].
  double Percentile(double p) const;

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  double sum_ = 0.0;
};

/// A (time, value) series sampled during a run; backs the paper's
/// object-lifetime figures (live object count / cumulative GC time vs time).
struct TimeSeries {
  std::vector<double> times_ms;
  std::vector<double> values;

  void Add(double t_ms, double v) {
    times_ms.push_back(t_ms);
    values.push_back(v);
  }
  size_t size() const { return times_ms.size(); }
};

}  // namespace deca

#endif  // DECA_COMMON_HISTOGRAM_H_
