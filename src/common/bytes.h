#ifndef DECA_COMMON_BYTES_H_
#define DECA_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace deca {

/// Unaligned little-endian store of a trivially copyable value.
template <typename T>
inline void StoreRaw(uint8_t* dst, T value) {
  std::memcpy(dst, &value, sizeof(T));
}

/// Unaligned little-endian load of a trivially copyable value.
template <typename T>
inline T LoadRaw(const uint8_t* src) {
  T value;
  std::memcpy(&value, src, sizeof(T));
  return value;
}

/// Growable byte sink used by the Kryo-like serializer and spill files.
/// Writes are appended; varints use LEB128.
class ByteWriter {
 public:
  void Clear() { buf_.clear(); }

  template <typename T>
  void Write(T value) {
    size_t old = buf_.size();
    buf_.resize(old + sizeof(T));
    StoreRaw(buf_.data() + old, value);
  }

  void WriteVarU64(uint64_t v);
  /// Zig-zag encoded signed varint.
  void WriteVarI64(int64_t v);
  void WriteBytes(const uint8_t* data, size_t n);
  void WriteString(const std::string& s);

  const uint8_t* data() const { return buf_.data(); }
  size_t size() const { return buf_.size(); }
  std::vector<uint8_t> TakeBuffer() { return std::move(buf_); }

 private:
  std::vector<uint8_t> buf_;
};

/// Sequential reader over a byte span; the mirror of ByteWriter.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size)
      : data_(data), size_(size), pos_(0) {}

  template <typename T>
  T Read() {
    T v = LoadRaw<T>(data_ + pos_);
    pos_ += sizeof(T);
    return v;
  }

  uint64_t ReadVarU64();
  int64_t ReadVarI64();
  void ReadBytes(uint8_t* out, size_t n);
  std::string ReadString();

  /// Advances past `n` bytes, returning a pointer to them — a zero-copy
  /// view valid for the underlying buffer's lifetime.
  const uint8_t* Skip(size_t n) {
    const uint8_t* p = data_ + pos_;
    pos_ += n;
    return p;
  }

  size_t position() const { return pos_; }
  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ >= size_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_;
};

/// Rounds `n` up to the next multiple of `align` (a power of two).
constexpr inline uint64_t AlignUp(uint64_t n, uint64_t align) {
  return (n + align - 1) & ~(align - 1);
}

/// Renders a byte count as a human-readable string ("1.5MB").
std::string HumanBytes(uint64_t bytes);

}  // namespace deca

#endif  // DECA_COMMON_BYTES_H_
