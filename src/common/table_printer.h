#ifndef DECA_COMMON_TABLE_PRINTER_H_
#define DECA_COMMON_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace deca {

/// Renders aligned plain-text tables; every benchmark harness uses this to
/// print the rows/series the paper's tables and figures report.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a data row; must have the same arity as the header row.
  void AddRow(std::vector<std::string> cells);

  /// Renders the table with column separators and a header rule.
  std::string ToString() const;

  /// Convenience: renders and writes to stdout.
  void Print() const;

  /// Formats a double with `digits` decimals.
  static std::string Num(double v, int digits = 1);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace deca

#endif  // DECA_COMMON_TABLE_PRINTER_H_
