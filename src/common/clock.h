#ifndef DECA_COMMON_CLOCK_H_
#define DECA_COMMON_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace deca {

/// Returns a monotonic timestamp in nanoseconds.
int64_t NowNanos();

/// Wall-clock stopwatch over the monotonic clock. Supports pause/resume so
/// callers can exclude sections (e.g. GC pauses) from a measurement.
class Stopwatch {
 public:
  Stopwatch();

  /// Resets the accumulated time and restarts.
  void Restart();

  /// Stops accumulating. No-op if already stopped.
  void Stop();

  /// Resumes accumulating. No-op if already running.
  void Start();

  /// Elapsed time in nanoseconds (includes the in-flight interval).
  int64_t ElapsedNanos() const;

  /// Elapsed time in milliseconds as a double.
  double ElapsedMillis() const;

 private:
  int64_t accumulated_ = 0;
  int64_t started_at_ = 0;
  bool running_ = false;
};

/// Adds the scope's wall-clock duration (in milliseconds) to `*sink` on
/// destruction. Used by the engine to attribute time to metric buckets.
class ScopedTimerMs {
 public:
  explicit ScopedTimerMs(double* sink) : sink_(sink), start_(NowNanos()) {}
  ~ScopedTimerMs() { *sink_ += static_cast<double>(NowNanos() - start_) / 1e6; }

  ScopedTimerMs(const ScopedTimerMs&) = delete;
  ScopedTimerMs& operator=(const ScopedTimerMs&) = delete;

 private:
  double* sink_;
  int64_t start_;
};

}  // namespace deca

#endif  // DECA_COMMON_CLOCK_H_
