// Quickstart: the smallest end-to-end tour of the library.
//
// It walks the full Deca pipeline on the paper's running example
// (LabeledPoint / DenseVector, Figures 1-3):
//   1. model the UDT and the stage's code shape,
//   2. run the local + global classification analyses (Algorithms 1-4),
//   3. synthesize the decomposed byte layout (Figure 2),
//   4. run Logistic Regression under Spark and under Deca and compare.
//
// Build:  cmake -B build -G Ninja && cmake --build build
// Run:    ./build/examples/quickstart

#include <cstdio>

#include "analysis/global_classifier.h"
#include "analysis/local_classifier.h"
#include "workloads/lr.h"

using namespace deca;

int main() {
  std::printf("== Deca quickstart ==\n\n");

  // -- 1+2: UDT model and classification (LrTypes bundles the paper's
  //          LabeledPoint example: annotated types + the LR map UDF's
  //          call graph).
  jvm::ClassRegistry registry;
  workloads::LrTypes types(&registry, /*dims=*/10);
  std::printf("LabeledPoint classifies as: %s\n",
              analysis::SizeTypeName(types.classified()));
  std::printf("  (the local classifier alone says VST — Section 3.2; the\n"
              "   global classifier proves the feature arrays are\n"
              "   fixed-length and refines it to SFST — Section 3.3)\n\n");

  // -- 3: the synthesized byte layout (paper Figure 2).
  const core::SudtLayout& layout = types.layout();
  std::printf("Decomposed record: %u bytes\n", layout.static_size());
  for (const auto& f : layout.fixed_fields()) {
    std::printf("  offset %3u: %-16s x%u (%s)\n", f.offset, f.path.c_str(),
                f.count, jvm::FieldKindName(f.kind));
  }

  // -- 4: run LR both ways on the same data and compare.
  workloads::MlParams params;
  params.dims = 10;
  params.num_points = 200'000;
  params.iterations = 10;
  params.spark.num_executors = 2;
  params.spark.partitions_per_executor = 2;
  params.spark.heap.heap_bytes = 64u << 20;
  params.spark.storage_fraction = 0.9;
  params.spark.spill_dir = "/tmp/deca_quickstart";

  params.mode = workloads::Mode::kSpark;
  workloads::LrResult spark = RunLogisticRegression(params);
  params.mode = workloads::Mode::kDeca;
  workloads::LrResult deca = RunLogisticRegression(params);

  std::printf("\n%-8s exec=%8.1fms  gc=%7.1fms  cached=%6.1fMB\n", "Spark",
              spark.run.exec_ms, spark.run.gc_ms, spark.run.cached_mb);
  std::printf("%-8s exec=%8.1fms  gc=%7.1fms  cached=%6.1fMB\n", "Deca",
              deca.run.exec_ms, deca.run.gc_ms, deca.run.cached_mb);
  std::printf("speedup: %.2fx; identical weights: %s\n",
              spark.run.exec_ms / deca.run.exec_ms,
              spark.weights == deca.weights ? "yes" : "no");
  return 0;
}
