// WordCount example: the paper's motivating shuffle workload (Section 6.1).
//
// Demonstrates the two map-side shuffle buffers side by side:
//   - Spark mode: an AppendOnlyMap of managed Tuple2/boxed objects, where
//     every eager combine allocates a fresh aggregate (GC churn);
//   - Deca mode: decomposed (key, count) segments in memory pages with
//     in-place combining — nothing for the collector to trace.
//
// Run: ./build/examples/wordcount [total_words] [distinct_keys]

#include <cstdio>
#include <cstdlib>

#include "workloads/wordcount.h"

using namespace deca::workloads;

int main(int argc, char** argv) {
  WordCountParams params;
  params.total_words = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                : 2'000'000;
  params.distinct_keys =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 100'000;
  params.zipf_s = 1.0;  // skewed word popularity, like real text
  params.spark.num_executors = 2;
  params.spark.partitions_per_executor = 2;
  params.spark.heap.heap_bytes = 64u << 20;
  params.spark.spill_dir = "/tmp/deca_example_wc";

  std::printf("WordCount: %llu words, %llu distinct keys (zipf)\n\n",
              static_cast<unsigned long long>(params.total_words),
              static_cast<unsigned long long>(params.distinct_keys));
  for (Mode mode : {Mode::kSpark, Mode::kDeca}) {
    params.mode = mode;
    WordCountResult r = RunWordCount(params);
    std::printf(
        "%-6s exec=%8.1fms gc=%7.1fms (minor=%llu full=%llu) "
        "distinct=%llu shuffled=%.1fMB\n",
        ModeName(mode), r.run.exec_ms, r.run.gc_ms,
        static_cast<unsigned long long>(r.run.minor_gcs),
        static_cast<unsigned long long>(r.run.full_gcs),
        static_cast<unsigned long long>(r.distinct_found),
        static_cast<double>(r.shuffle_bytes) / (1 << 20));
  }
  return 0;
}
