// decabench: command-line driver to run any of the paper's workloads with
// chosen mode, sizes and GC algorithm — the knob-turning tool for
// exploring the reproduction beyond the fixed bench configurations.
//
// Usage:
//   decabench <wc|lr|kmeans|pr|cc|sql> [options]
// Options:
//   --mode=spark|sparkser|deca     (default spark; sql: spark|sparksql|deca)
//   --size=N          items: words (wc), points (lr/kmeans), edges (pr/cc),
//                     uservisits rows (sql). Default per workload.
//   --heap-mb=N       per-executor heap (default 64)
//   --executors=N     (default 2)    --iters=N (default 10)
//   --threads=N       worker threads for the parallel task runtime
//                     (default 0 = sequential; results are bit-identical)
//   --gc=ps|cms|g1    collector (default ps)
//   --dims=N          vector dims (lr/kmeans, default 10)
//   --keys=N          distinct keys (wc, default 100000)
//   --storage=F       storage fraction (default 0.9)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "workloads/graph.h"
#include "workloads/kmeans.h"
#include "workloads/lr.h"
#include "workloads/sql.h"
#include "workloads/wordcount.h"

using namespace deca;
using namespace deca::workloads;

namespace {

struct Options {
  std::string workload;
  std::string mode = "spark";
  uint64_t size = 0;
  size_t heap_mb = 64;
  int executors = 2;
  int threads = 0;
  int iters = 10;
  std::string gc = "ps";
  int dims = 10;
  uint64_t keys = 100000;
  double storage = 0.9;
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) != 0) return false;
  *out = arg + prefix.size();
  return true;
}

void PrintResult(const char* name, const RunResult& r) {
  std::printf(
      "%s [%s]: exec=%.1fms load=%.1fms gc=%.1fms (minor=%llu full=%llu, "
      "concurrent=%.1fms)\n  cached=%.1fMB swapped=%.1fMB compute=%.1fms "
      "ser=%.1fms deser=%.1fms shuffle r/w=%.1f/%.1fms disk=%.1fms\n",
      name, ModeName(r.mode), r.exec_ms, r.load_ms, r.gc_ms,
      static_cast<unsigned long long>(r.minor_gcs),
      static_cast<unsigned long long>(r.full_gcs), r.concurrent_gc_ms,
      r.cached_mb, r.swapped_mb, r.compute_ms, r.ser_ms, r.deser_ms,
      r.shuffle_read_ms, r.shuffle_write_ms, r.spill_ms);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: decabench <wc|lr|kmeans|pr|cc|sql> [--mode=...] "
                 "[--size=N] [--heap-mb=N] [--executors=N] [--threads=N] "
                 "[--iters=N] [--gc=ps|cms|g1] [--dims=N] [--keys=N] "
                 "[--storage=F]\n");
    return 2;
  }
  Options opt;
  opt.workload = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string v;
    if (ParseFlag(argv[i], "mode", &v)) {
      opt.mode = v;
    } else if (ParseFlag(argv[i], "size", &v)) {
      opt.size = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "heap-mb", &v)) {
      opt.heap_mb = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "executors", &v)) {
      opt.executors = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "threads", &v)) {
      opt.threads = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "iters", &v)) {
      opt.iters = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "gc", &v)) {
      opt.gc = v;
    } else if (ParseFlag(argv[i], "dims", &v)) {
      opt.dims = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "keys", &v)) {
      opt.keys = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "storage", &v)) {
      opt.storage = std::atof(v.c_str());
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }

  spark::SparkConfig cfg;
  cfg.num_executors = opt.executors;
  cfg.num_worker_threads = opt.threads;
  cfg.partitions_per_executor = 2;
  cfg.heap.heap_bytes = opt.heap_mb << 20;
  cfg.storage_fraction = opt.storage;
  cfg.spill_dir = "/tmp/decabench_spill";
  if (opt.gc == "cms") {
    cfg.heap.algorithm = jvm::GcAlgorithm::kConcurrentMarkSweep;
  } else if (opt.gc == "g1") {
    cfg.heap.algorithm = jvm::GcAlgorithm::kG1;
  }

  Mode mode = opt.mode == "deca"
                  ? Mode::kDeca
                  : (opt.mode == "sparkser" ? Mode::kSparkSer : Mode::kSpark);

  if (opt.workload == "wc") {
    WordCountParams p;
    p.total_words = opt.size != 0 ? opt.size : 2'000'000;
    p.distinct_keys = opt.keys;
    p.mode = mode;
    p.spark = cfg;
    WordCountResult r = RunWordCount(p);
    PrintResult("wordcount", r.run);
    std::printf("  total=%llu distinct=%llu shuffled=%.1fMB\n",
                static_cast<unsigned long long>(r.total_count),
                static_cast<unsigned long long>(r.distinct_found),
                static_cast<double>(r.shuffle_bytes) / (1 << 20));
  } else if (opt.workload == "lr") {
    MlParams p;
    p.dims = opt.dims;
    p.num_points = opt.size != 0 ? opt.size : 200'000;
    p.iterations = opt.iters;
    p.mode = mode;
    p.spark = cfg;
    LrResult r = RunLogisticRegression(p);
    PrintResult("logistic-regression", r.run);
  } else if (opt.workload == "kmeans") {
    MlParams p;
    p.dims = opt.dims;
    p.num_points = opt.size != 0 ? opt.size : 200'000;
    p.iterations = opt.iters;
    p.mode = mode;
    p.spark = cfg;
    KMeansResult r = RunKMeans(p);
    PrintResult("kmeans", r.run);
  } else if (opt.workload == "pr" || opt.workload == "cc") {
    GraphParams p;
    p.num_edges = opt.size != 0 ? opt.size : (1u << 20);
    p.num_vertices = p.num_edges / 8;
    p.iterations = opt.iters;
    p.mode = mode;
    p.spark = cfg;
    p.spark.storage_fraction = std::min(opt.storage, 0.5);
    if (opt.workload == "pr") {
      PageRankResult r = RunPageRank(p);
      PrintResult("pagerank", r.run);
      std::printf("  rank_sum=%.2f vertices=%llu\n", r.rank_sum,
                  static_cast<unsigned long long>(r.vertices_ranked));
    } else {
      ConnectedComponentsResult r = RunConnectedComponents(p);
      PrintResult("connected-components", r.run);
      std::printf("  components=%llu\n",
                  static_cast<unsigned long long>(r.components));
    }
  } else if (opt.workload == "sql") {
    SqlParams p;
    p.uservisits_rows = opt.size != 0 ? opt.size : 600'000;
    p.rankings_rows = p.uservisits_rows / 3;
    p.engine = opt.mode == "deca"
                   ? SqlEngine::kDeca
                   : (opt.mode == "sparksql" ? SqlEngine::kSparkSql
                                             : SqlEngine::kSparkRdd);
    p.spark = cfg;
    SqlResult r = RunSqlQueries(p);
    std::printf("sql [%s]: q1=%.1fms (gc %.1f) q2=%.1fms (gc %.1f) "
                "cache=%.1fMB q1_rows=%llu q2_groups=%llu\n",
                SqlEngineName(p.engine), r.q1_exec_ms, r.q1_gc_ms,
                r.q2_exec_ms, r.q2_gc_ms, r.cached_mb,
                static_cast<unsigned long long>(r.q1_matches),
                static_cast<unsigned long long>(r.q2_groups));
  } else {
    std::fprintf(stderr, "unknown workload: %s\n", opt.workload.c_str());
    return 2;
  }
  return 0;
}
