// SQL analytics example (paper Section 6.6): the AMPLab-style exploratory
// queries over cached tables, comparing three memory layouts of the same
// data: row objects (Spark RDDs), columnar arrays (Spark SQL), and Deca's
// decomposed row pages. All three return exactly the same answers; they
// differ in what the garbage collector has to trace.
//
// Run: ./build/examples/sql_analytics [rankings_rows] [uservisits_rows]

#include <cstdio>
#include <cstdlib>

#include "workloads/sql.h"

using namespace deca::workloads;

int main(int argc, char** argv) {
  SqlParams params;
  params.rankings_rows =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200'000;
  params.uservisits_rows =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 600'000;
  params.spark.num_executors = 2;
  params.spark.partitions_per_executor = 2;
  params.spark.heap.heap_bytes = 128u << 20;
  params.spark.storage_fraction = 0.9;
  params.spark.spill_dir = "/tmp/deca_example_sql";

  std::printf("Tables: rankings=%llu rows, uservisits=%llu rows\n",
              static_cast<unsigned long long>(params.rankings_rows),
              static_cast<unsigned long long>(params.uservisits_rows));
  std::printf("Q1: SELECT pageURL, pageRank FROM rankings WHERE pageRank > "
              "100\nQ2: SELECT SUBSTR(sourceIP,1,5), SUM(adRevenue) FROM "
              "uservisits GROUP BY 1\n\n");
  for (SqlEngine engine :
       {SqlEngine::kSparkRdd, SqlEngine::kSparkSql, SqlEngine::kDeca}) {
    params.engine = engine;
    SqlResult r = RunSqlQueries(params);
    std::printf(
        "%-9s q1=%7.1fms (gc %6.1f)  q2=%8.1fms (gc %6.1f)  cache=%6.1fMB"
        "  [%llu rows, %llu groups, revenue %.1f]\n",
        SqlEngineName(engine), r.q1_exec_ms, r.q1_gc_ms, r.q2_exec_ms,
        r.q2_gc_ms, r.cached_mb,
        static_cast<unsigned long long>(r.q1_matches),
        static_cast<unsigned long long>(r.q2_groups), r.q2_revenue_sum);
  }
  return 0;
}
