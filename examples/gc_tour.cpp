// GC substrate tour: drives the simulated managed runtime directly —
// allocate object graphs, watch minor/full collections, compare the three
// collectors, and see what decomposing data into pages does to pause
// times. Useful for understanding the substrate under the Spark layer.
//
// Run: ./build/examples/gc_tour

#include <cstdio>

#include "core/page.h"
#include "jvm/heap.h"

using namespace deca;
using namespace deca::jvm;

namespace {

void Tour(GcAlgorithm algo) {
  ClassRegistry registry;
  uint32_t point = registry.RegisterClass(
      "Point", {{"x", FieldKind::kDouble}, {"next", FieldKind::kRef}});
  HeapConfig cfg;
  cfg.heap_bytes = 32u << 20;
  cfg.algorithm = algo;
  Heap heap(cfg, &registry);

  // Phase 1: allocate 100k long-living objects (a "cache").
  VectorRootProvider cache;
  heap.AddRootProvider(&cache);
  for (int i = 0; i < 100'000; ++i) {
    ObjRef p = heap.AllocateInstance(point);
    heap.SetField<double>(p, 0, i);
    cache.refs().push_back(p);
  }
  // Phase 2: churn temporaries against the live cache.
  for (int i = 0; i < 400'000; ++i) heap.AllocateInstance(point);
  heap.CollectFull();

  const GcStats& st = heap.stats();
  std::printf(
      "%-18s minor=%3llu (%.1fms)  full=%2llu (pause %.1fms, conc %.1fms)  "
      "traced=%llu objects\n",
      heap.collector()->name(), static_cast<unsigned long long>(st.minor_count),
      st.minor_pause_ms, static_cast<unsigned long long>(st.full_count),
      st.full_pause_ms, st.concurrent_ms,
      static_cast<unsigned long long>(st.objects_traced));
  heap.RemoveRootProvider(&cache);
}

void PagesVsObjects() {
  ClassRegistry registry;
  uint32_t point = registry.RegisterClass(
      "Point", {{"x", FieldKind::kDouble}, {"next", FieldKind::kRef}});
  HeapConfig cfg;
  cfg.heap_bytes = 32u << 20;
  Heap heap(cfg, &registry);

  // 100k records as decomposed page segments instead of objects.
  core::PageGroup pages(&heap, 64u << 10);
  for (int i = 0; i < 100'000; ++i) {
    core::SegPtr s = pages.Append(8);
    StoreRaw<double>(pages.Resolve(s), i);
  }
  for (int i = 0; i < 400'000; ++i) heap.AllocateInstance(point);
  heap.CollectFull();
  const GcStats& st = heap.stats();
  std::printf(
      "%-18s minor=%3llu (%.1fms)  full=%2llu (pause %.1fms)  traced=%llu "
      "objects  <- pages bypass tracing\n",
      "PS + Deca pages",
      static_cast<unsigned long long>(st.minor_count), st.minor_pause_ms,
      static_cast<unsigned long long>(st.full_count), st.full_pause_ms,
      static_cast<unsigned long long>(st.objects_traced));
}

}  // namespace

int main() {
  std::printf("== GC substrate tour: 100k live + 400k temporary objects ==\n");
  Tour(GcAlgorithm::kParallelScavenge);
  Tour(GcAlgorithm::kConcurrentMarkSweep);
  Tour(GcAlgorithm::kG1);
  PagesVsObjects();
  std::printf(
      "\nThe same live data as decomposed pages leaves the collectors with\n"
      "almost nothing to trace — that is Deca's entire premise.\n");
  return 0;
}
