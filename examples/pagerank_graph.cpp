// Graph analytics example: PageRank + ConnectedComponents over an RMAT
// graph, showing the paper's mixed caching-and-shuffling scenario
// (Section 6.3) and the partially decomposable pattern (Figure 7b): the
// groupByKey buffer that builds the adjacency lists stays in object form
// even under Deca, but the long-living cached copy is decomposed.
//
// Run: ./build/examples/pagerank_graph [log2_vertices] [log2_edges]

#include <cstdio>
#include <cstdlib>

#include "workloads/graph.h"

using namespace deca::workloads;

int main(int argc, char** argv) {
  int log_v = argc > 1 ? std::atoi(argv[1]) : 16;
  int log_e = argc > 2 ? std::atoi(argv[2]) : 20;
  GraphParams params;
  params.num_vertices = 1ull << log_v;
  params.num_edges = 1ull << log_e;
  params.iterations = 5;
  params.spark.num_executors = 2;
  params.spark.partitions_per_executor = 2;
  params.spark.heap.heap_bytes = 64u << 20;
  params.spark.storage_fraction = 0.4;
  params.spark.spill_dir = "/tmp/deca_example_graph";

  std::printf("RMAT graph: 2^%d vertices, 2^%d edges\n\n", log_v, log_e);
  for (Mode mode : {Mode::kSpark, Mode::kSparkSer, Mode::kDeca}) {
    params.mode = mode;
    PageRankResult pr = RunPageRank(params);
    std::printf("PageRank %-9s exec=%8.1fms gc=%7.1fms cached=%5.1fMB "
                "(rank mass %.1f over %llu vertices)\n",
                ModeName(mode), pr.run.exec_ms, pr.run.gc_ms,
                pr.run.cached_mb, pr.rank_sum,
                static_cast<unsigned long long>(pr.vertices_ranked));
  }
  std::printf("\n");
  for (Mode mode : {Mode::kSpark, Mode::kDeca}) {
    params.mode = mode;
    ConnectedComponentsResult cc = RunConnectedComponents(params);
    std::printf("CC       %-9s exec=%8.1fms gc=%7.1fms components=%llu\n",
                ModeName(mode), cc.run.exec_ms, cc.run.gc_ms,
                static_cast<unsigned long long>(cc.components));
  }
  return 0;
}
