// Reproduces Figure 10(a): PageRank on three graphs (the paper's
// LiveJournal 2GB / WebBase 30GB / HiBench 60GB become three RMAT graphs of
// increasing size). Mixed caching (adjacency lists, built via groupByKey —
// the partially decomposable scenario) and per-iteration contribution
// shuffles. Paper: Deca 1.1-6.4x; SparkSer has little impact because
// (de)serialization offsets its GC savings.

#include "bench_util.h"
#include "workloads/graph.h"

using namespace deca;
using namespace deca::bench;
using namespace deca::workloads;

int main(int argc, char** argv) {
  BenchReport report("fig10_pagerank", argc, argv);
  PrintHeader("Figure 10(a): PageRank",
              "Fig. 10(a) — LJ(2GB) / WB(30GB) / HB(60GB) graphs",
              "Scaled: RMAT graphs {64k/512k, 128k/1M, 256k/2M} (V/E), "
              "5 iterations");
  struct GraphSpec {
    const char* name;
    uint64_t v, e;
  } graphs[] = {{"LJ", 1u << 16, 1u << 19},
                {"WB", 1u << 17, 1u << 20},
                {"HB", 1u << 18, 1u << 21}};
  TablePrinter t({"graph", "mode", "exec(ms)", "gc(ms)", "gc%",
                  "cached(MB)", "load(ms)", "vs Spark"});
  for (const auto& g : graphs) {
    double spark_ms = 0;
    for (Mode mode : {Mode::kSpark, Mode::kSparkSer, Mode::kDeca}) {
      GraphParams p;
      p.num_vertices = g.v;
      p.num_edges = g.e;
      p.iterations = 5;
      p.mode = mode;
      p.spark = DefaultSpark();
      p.spark.partitions_per_executor = 4;
      p.spark.storage_fraction = 0.4;  // paper: 40% caching, rest shuffle
      PageRankResult r = RunPageRank(p);
      if (mode == Mode::kSpark) spark_ms = r.run.exec_ms;
      report.AddRun(std::string(g.name) + "/" + ModeName(mode), r.run);
      t.AddRow({g.name, ModeName(mode), Ms(r.run.exec_ms), Ms(r.run.gc_ms),
                Pct(100.0 * r.run.gc_ms / r.run.exec_ms), Mb(r.run.cached_mb),
                Ms(r.run.load_ms), Speedup(spark_ms, r.run.exec_ms)});
    }
  }
  t.Print();
  std::printf(
      "\nExpected shape: Deca 1.1-6.4x; SparkSer ~= Spark (deserialization\n"
      "offsets its GC savings).\n");
  return 0;
}
