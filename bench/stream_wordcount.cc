// Steady-state micro-batch streaming: hundreds of tumbling-window
// wordcount epochs under Deca epoch regions vs the three GC collectors.
// The paper's lifetime argument, applied to streaming: every allocation
// of an epoch dies with the window that reads it, so the region reclaims
// the whole epoch as one unit. The collectors instead rediscover each
// dead object per cycle, so their per-epoch pause (and its p99 tail)
// scales with live data while Deca's stays flat — and the end-of-run
// data-plane footprint must sit at zero, not drift.

#include <cstdlib>

#include "bench_util.h"
#include "workloads/stream.h"

using namespace deca;
using namespace deca::bench;
using namespace deca::workloads;

namespace {

struct Variant {
  const char* name;
  Mode mode;
  jvm::GcAlgorithm algo;
};

std::string DriftKb(const RunResult& r) {
  double kb = (static_cast<double>(r.footprint_end_bytes) -
               static_cast<double>(r.footprint_base_bytes)) /
              1024.0;
  return TablePrinter::Num(kb, 1);
}

}  // namespace

int main(int argc, char** argv) {
  BenchReport report("stream_wordcount", argc, argv);
  PrintHeader("Streaming wordcount: epoch regions vs GC",
              "Sec. 3.4/4 lifetimes applied to micro-batching",
              "240 tumbling epochs x window 4; DECA_STREAM_* overrides");
  StreamParams p;
  p.stream = DefaultStreamOptions(/*epochs_def=*/240, /*window_def=*/4);
  p.records_per_epoch = Scaled(20'000);
  p.distinct_keys = Scaled(4'096);
  p.spark = DefaultSpark();

  const Variant variants[] = {
      {"Deca", Mode::kDeca, jvm::GcAlgorithm::kParallelScavenge},
      {"Spark-PS", Mode::kSpark, jvm::GcAlgorithm::kParallelScavenge},
      {"Spark-CMS", Mode::kSpark, jvm::GcAlgorithm::kConcurrentMarkSweep},
      {"Spark-G1", Mode::kSpark, jvm::GcAlgorithm::kG1},
  };

  FaultTotals faults;
  TablePrinter t({"variant", "krec/s", "pause p50(ms)", "pause p99(ms)",
                  "reclaim p99(ms)", "gc(ms)", "full GCs", "drift(KB)"});
  uint64_t digest = 0;
  bool digests_agree = true;
  RunResult last;
  for (const Variant& v : variants) {
    p.mode = v.mode;
    p.spark.heap.algorithm = v.algo;
    StreamResult r = RunStreamWordCount(p);
    faults.Add(r.run);
    last = r.run;
    if (digest == 0) digest = r.digest;
    digests_agree = digests_agree && r.digest == digest;
    report.AddRun(std::string("stream-wc/") + v.name, r.run);
    report.AddMetric("throughput_rps", r.throughput_rps, /*exact=*/false);
    // The 64-bit window digest in exact halves (a double carries 53
    // bits), so budgeted and unbudgeted reports can be digest-compared.
    report.AddMetric("stream.digest_lo",
                     static_cast<double>(static_cast<uint32_t>(r.digest)),
                     /*exact=*/true);
    report.AddMetric("stream.digest_hi",
                     static_cast<double>(static_cast<uint32_t>(r.digest >> 32)),
                     /*exact=*/true);
    t.AddRow({v.name, TablePrinter::Num(r.throughput_rps / 1000.0, 1),
              Ms(r.run.epoch_pause_p50_ms), Ms(r.run.epoch_pause_p99_ms),
              Ms(r.run.epoch_reclaim_p99_ms), Ms(r.run.gc_ms),
              std::to_string(r.run.full_gcs), DriftKb(r.run)});
  }
  t.Print();
  PrintExecutorMemory(last);
  faults.PrintIfAny();
  std::printf("\nwindow digests agree across variants: %s\n",
              digests_agree ? "yes" : "NO — BUG");
  std::printf(
      "\nExpected shape: identical digests everywhere (the collector is\n"
      "not allowed to change answers); Deca's p99 pause stays flat while\n"
      "the collectors' tails track live data; every variant ends with the\n"
      "data plane empty (drift <= 0: the end sample, after the last\n"
      "window retires, is at or below the epoch-10 base).\n");
  return digests_agree ? 0 : 1;
}
