// Reproduces Table 3: GC time, its share of execution time, and Deca's GC
// reduction for the five applications, each at its largest configuration
// without data swapping/spilling (as in the paper).

#include "bench_util.h"
#include "workloads/graph.h"
#include "workloads/kmeans.h"
#include "workloads/lr.h"
#include "workloads/wordcount.h"

using namespace deca;
using namespace deca::bench;
using namespace deca::workloads;

int main(int argc, char** argv) {
  BenchReport report("table3_gc_reduction", argc, argv);
  PrintHeader("Table 3: GC time reduction",
              "Table 3 — Spark exec/gc/ratio vs Deca gc + reduction",
              "Largest non-spilling configuration per application");
  TablePrinter t({"app", "Spark exec(ms)", "Spark gc(ms)", "gc ratio",
                  "Deca exec(ms)", "Deca gc(ms)", "gc reduction"});

  auto add_row = [&](const char* app, const RunResult& spark,
                     const RunResult& deca) {
    double reduction = spark.gc_ms > 0
                           ? 100.0 * (spark.gc_ms - deca.gc_ms) / spark.gc_ms
                           : 0.0;
    report.AddRun(std::string(app) + "/Spark", spark);
    report.AddRun(std::string(app) + "/Deca", deca);
    t.AddRow({app, Ms(spark.exec_ms), Ms(spark.gc_ms),
              Pct(100.0 * spark.gc_ms / spark.exec_ms), Ms(deca.exec_ms),
              Ms(deca.gc_ms), Pct(reduction)});
  };

  {
    WordCountParams p;
    p.total_words = 3'000'000;
    p.distinct_keys = 200'000;
    p.spark = DefaultSpark();
    p.mode = Mode::kSpark;
    WordCountResult s = RunWordCount(p);
    p.mode = Mode::kDeca;
    WordCountResult d = RunWordCount(p);
    add_row("WC: 3M/200k", s.run, d.run);
  }
  {
    MlParams p;
    p.num_points = 640'000;
    p.iterations = 10;
    p.spark = DefaultSpark();
    p.spark.storage_fraction = 0.9;
    p.mode = Mode::kSpark;
    LrResult s = RunLogisticRegression(p);
    p.mode = Mode::kDeca;
    LrResult d = RunLogisticRegression(p);
    add_row("LR: 640k", s.run, d.run);
  }
  {
    MlParams p;
    p.num_points = 480'000;
    p.iterations = 8;
    p.spark = DefaultSpark();
    p.spark.storage_fraction = 0.8;
    p.mode = Mode::kSpark;
    KMeansResult s = RunKMeans(p);
    p.mode = Mode::kDeca;
    KMeansResult d = RunKMeans(p);
    add_row("KMeans: 480k", s.run, d.run);
  }
  {
    GraphParams p;
    p.num_vertices = 1u << 17;
    p.num_edges = 1u << 20;
    p.iterations = 5;
    p.spark = DefaultSpark();
    p.spark.partitions_per_executor = 4;
    p.spark.storage_fraction = 0.4;
    p.mode = Mode::kSpark;
    PageRankResult s = RunPageRank(p);
    p.mode = Mode::kDeca;
    PageRankResult d = RunPageRank(p);
    add_row("PR: 1M edges", s.run, d.run);
  }
  {
    GraphParams p;
    p.num_vertices = 1u << 17;
    p.num_edges = 1u << 20;
    p.iterations = 6;
    p.spark = DefaultSpark();
    p.spark.partitions_per_executor = 4;
    p.spark.storage_fraction = 0.4;
    p.mode = Mode::kSpark;
    ConnectedComponentsResult s = RunConnectedComponents(p);
    p.mode = Mode::kDeca;
    ConnectedComponentsResult d = RunConnectedComponents(p);
    add_row("CC: 1M edges", s.run, d.run);
  }
  t.Print();
  std::printf(
      "\nExpected shape (paper): GC ratios 40-79%% for Spark; Deca removes\n"
      ">=97%% of GC time in every application.\n");
  return 0;
}
