// Reproduces Figure 10(b): ConnectedComponents on the same three graphs as
// Figure 10(a), via min-label propagation over the cached adjacency lists.

#include "bench_util.h"
#include "workloads/graph.h"

using namespace deca;
using namespace deca::bench;
using namespace deca::workloads;

int main(int argc, char** argv) {
  BenchReport report("fig10_cc", argc, argv);
  PrintHeader("Figure 10(b): ConnectedComponents",
              "Fig. 10(b) — LJ(2GB) / WB(30GB) / HB(60GB) graphs",
              "Scaled: RMAT graphs {64k/512k, 128k/1M, 256k/2M} (V/E), "
              "up to 6 label-propagation rounds");
  struct GraphSpec {
    const char* name;
    uint64_t v, e;
  } graphs[] = {{"LJ", 1u << 16, 1u << 19},
                {"WB", 1u << 17, 1u << 20},
                {"HB", 1u << 18, 1u << 21}};
  TablePrinter t({"graph", "mode", "exec(ms)", "gc(ms)", "gc%", "cached(MB)",
                  "components", "vs Spark"});
  for (const auto& g : graphs) {
    double spark_ms = 0;
    for (Mode mode : {Mode::kSpark, Mode::kSparkSer, Mode::kDeca}) {
      GraphParams p;
      p.num_vertices = g.v;
      p.num_edges = g.e;
      p.iterations = 6;
      p.mode = mode;
      p.spark = DefaultSpark();
      p.spark.partitions_per_executor = 4;
      p.spark.storage_fraction = 0.4;
      ConnectedComponentsResult r = RunConnectedComponents(p);
      if (mode == Mode::kSpark) spark_ms = r.run.exec_ms;
      report.AddRun(std::string(g.name) + "/" + ModeName(mode), r.run);
      t.AddRow({g.name, ModeName(mode), Ms(r.run.exec_ms), Ms(r.run.gc_ms),
                Pct(100.0 * r.run.gc_ms / r.run.exec_ms), Mb(r.run.cached_mb),
                std::to_string(r.components),
                Speedup(spark_ms, r.run.exec_ms)});
    }
  }
  t.Print();
  std::printf("\nExpected shape: as Fig 10(a); component counts identical\n"
              "across modes (exact cross-mode agreement).\n");
  return 0;
}
