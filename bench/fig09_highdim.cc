// Reproduces Figure 9(d): LR and KMeans on a high-dimensional dataset (the
// paper uses 4096-dim features extracted from the Amazon image dataset; we
// generate synthetic 4096-dim vectors — the memory-management behaviour
// depends only on dimensionality and point count). With such wide vectors
// the per-object header overhead is negligible, so Spark's and Deca's
// cached sizes are nearly identical and the speedups are modest (paper:
// 1.2x - 5.3x).

#include "bench_util.h"
#include "workloads/kmeans.h"
#include "workloads/lr.h"

using namespace deca;
using namespace deca::bench;
using namespace deca::workloads;

int main(int argc, char** argv) {
  BenchReport report("fig09_highdim", argc, argv);
  PrintHeader("Figure 9(d): high-dimensional (4096-d) LR and KMeans",
              "Fig. 9(d) — Amazon image dataset {40,80}GB",
              "Scaled: synthetic 4096-dim vectors, {1200, 2400} points");
  TablePrinter t({"app", "points", "mode", "exec(ms)", "gc(ms)",
                  "cached(MB)", "swapped(MB)", "vs Spark"});
  for (uint64_t pts : {1200ull, 2400ull}) {
    double spark_ms = 0;
    for (Mode mode : {Mode::kSpark, Mode::kSparkSer, Mode::kDeca}) {
      MlParams p;
      p.dims = 4096;
      p.num_points = pts;
      p.iterations = 10;
      p.mode = mode;
      p.spark = DefaultSpark();
      p.spark.storage_fraction = 0.9;
      p.spark.deca_page_bytes = 256u << 10;  // fit 32KB records comfortably
      LrResult r = RunLogisticRegression(p);
      if (mode == Mode::kSpark) spark_ms = r.run.exec_ms;
      report.AddRun("LR/" + std::to_string(pts) + "pts/" + ModeName(mode),
                    r.run);
      t.AddRow({"LR", std::to_string(pts), ModeName(mode), Ms(r.run.exec_ms),
                Ms(r.run.gc_ms), Mb(r.run.cached_mb), Mb(r.run.swapped_mb),
                Speedup(spark_ms, r.run.exec_ms)});
    }
  }
  for (uint64_t pts : {1200ull, 2400ull}) {
    double spark_ms = 0;
    for (Mode mode : {Mode::kSpark, Mode::kSparkSer, Mode::kDeca}) {
      MlParams p;
      p.dims = 4096;
      p.clusters = 4;
      p.num_points = pts;
      p.iterations = 5;
      p.mode = mode;
      p.spark = DefaultSpark();
      p.spark.storage_fraction = 0.9;
      p.spark.deca_page_bytes = 256u << 10;
      KMeansResult r = RunKMeans(p);
      if (mode == Mode::kSpark) spark_ms = r.run.exec_ms;
      report.AddRun("KMeans/" + std::to_string(pts) + "pts/" +
                        ModeName(mode),
                    r.run);
      t.AddRow({"KMeans", std::to_string(pts), ModeName(mode),
                Ms(r.run.exec_ms), Ms(r.run.gc_ms), Mb(r.run.cached_mb),
                Mb(r.run.swapped_mb), Speedup(spark_ms, r.run.exec_ms)});
    }
  }
  t.Print();
  std::printf(
      "\nExpected shape: cached sizes nearly identical across modes (header\n"
      "overhead is negligible at 4096 dims); Deca speedups modest.\n");
  return 0;
}
