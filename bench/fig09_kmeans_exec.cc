// Reproduces Figure 9(c): KMeans execution time and cached data size
// across dataset sizes for Spark, SparkSer and Deca. Same caching story as
// LR plus an aggregated shuffle per iteration.

#include "bench_util.h"
#include "workloads/kmeans.h"

using namespace deca;
using namespace deca::bench;
using namespace deca::workloads;

int main(int argc, char** argv) {
  BenchReport report("fig09_kmeans_exec", argc, argv);
  PrintHeader("Figure 9(c): KMeans execution time",
              "Fig. 9(c) — sizes {40..200}GB, Spark/SparkSer/Deca",
              "Scaled: 10-dim points {120k..600k}, k=10, 8 iters");
  TablePrinter t({"points", "mode", "exec(ms)", "gc(ms)", "gc%", "full GCs",
                  "cached(MB)", "swapped(MB)", "vs Spark"});
  for (uint64_t pts :
       {120'000ull, 240'000ull, 360'000ull, 480'000ull, 600'000ull}) {
    double spark_ms = 0;
    for (Mode mode : {Mode::kSpark, Mode::kSparkSer, Mode::kDeca}) {
      MlParams p;
      p.dims = 10;
      p.clusters = 10;
      p.num_points = pts;
      p.iterations = 8;
      p.mode = mode;
      p.spark = DefaultSpark();
      p.spark.storage_fraction = 0.8;
      LrResult dummy;  // (unused; kept for symmetry with fig09_lr_exec)
      (void)dummy;
      KMeansResult r = RunKMeans(p);
      if (mode == Mode::kSpark) spark_ms = r.run.exec_ms;
      report.AddRun(std::to_string(pts) + "pts/" + ModeName(mode), r.run);
      t.AddRow({std::to_string(pts), ModeName(mode), Ms(r.run.exec_ms),
                Ms(r.run.gc_ms), Pct(100.0 * r.run.gc_ms / r.run.exec_ms),
                std::to_string(r.run.full_gcs), Mb(r.run.cached_mb),
                Mb(r.run.swapped_mb), Speedup(spark_ms, r.run.exec_ms)});
    }
  }
  t.Print();
  std::printf(
      "\nExpected shape: same crossover as LR — moderate Deca gains while\n"
      "the cache fits, large once Spark full-GC thrashes or swaps.\n");
  return 0;
}
