// Reproduces Table 4: comparing Deca against GC tuning — (a) adjusting the
// storage/shuffle memory fractions, and (b) swapping the Parallel Scavenge
// collector for CMS or G1. Paper: LR is very sensitive to both tunings
// (the right fraction or collector removes most of its GC pain), PageRank
// much less so; and tuned GC still does not reach Deca.

#include "bench_util.h"
#include "workloads/graph.h"
#include "workloads/lr.h"

using namespace deca;
using namespace deca::bench;
using namespace deca::workloads;

int main(int argc, char** argv) {
  BenchReport report("table4_gc_tuning", argc, argv);
  PrintHeader("Table 4: GC tuning (memory fractions and collectors)",
              "Table 4 — storage:shuffle fractions and PS/CMS/G1",
              "LR: 640k points; PR: 1M edges; Deca rows for reference");

  TablePrinter t({"app", "tuning", "exec(ms)", "gc pause(ms)",
                  "concurrent gc(ms)", "full GCs"});

  auto run_lr = [&](Mode mode, double storage_fraction,
                    jvm::GcAlgorithm algo, const std::string& label) {
    MlParams p;
    p.num_points = 640'000;
    p.iterations = 10;
    p.mode = mode;
    p.spark = DefaultSpark();
    p.spark.storage_fraction = storage_fraction;
    p.spark.heap.algorithm = algo;
    LrResult r = RunLogisticRegression(p);
    report.AddRun("LR/" + label, r.run);
    t.AddRow({"LR", label, Ms(r.run.exec_ms), Ms(r.run.gc_ms),
              Ms(r.run.concurrent_gc_ms), std::to_string(r.run.full_gcs)});
  };
  auto run_pr = [&](Mode mode, double storage_fraction,
                    jvm::GcAlgorithm algo, const std::string& label) {
    GraphParams p;
    p.num_vertices = 1u << 17;
    p.num_edges = 1u << 20;
    p.iterations = 5;
    p.mode = mode;
    p.spark = DefaultSpark();
    p.spark.storage_fraction = storage_fraction;
    p.spark.heap.algorithm = algo;
    PageRankResult r = RunPageRank(p);
    report.AddRun("PR/" + label, r.run);
    t.AddRow({"PR", label, Ms(r.run.exec_ms), Ms(r.run.gc_ms),
              Ms(r.run.concurrent_gc_ms), std::to_string(r.run.full_gcs)});
  };

  // -- LR: storage fraction sweep (paper: 0.8:0.2 / 0.6:0.4 / 0.4:0.6).
  for (double f : {0.9, 0.6, 0.4}) {
    run_lr(Mode::kSpark, f, jvm::GcAlgorithm::kParallelScavenge,
           "PS frac=" + TablePrinter::Num(f, 1));
  }
  // -- LR: collector sweep "with tuned parameters" (paper Section 6.4) —
  // the alternative collectors are evaluated at the tuned fraction, where
  // the old generation is not saturated by the cache.
  run_lr(Mode::kSpark, 0.6, jvm::GcAlgorithm::kConcurrentMarkSweep,
         "CMS frac=0.6");
  run_lr(Mode::kSpark, 0.6, jvm::GcAlgorithm::kG1, "G1 frac=0.6");
  run_lr(Mode::kSpark, 0.9, jvm::GcAlgorithm::kG1, "G1 frac=0.9");
  run_lr(Mode::kDeca, 0.9, jvm::GcAlgorithm::kParallelScavenge, "Deca");

  // -- PR: fraction sweep (paper: 0.4 / 0.1 / 0.0 with full shuffle).
  for (double f : {0.4, 0.1, 0.05}) {
    run_pr(Mode::kSpark, f, jvm::GcAlgorithm::kParallelScavenge,
           "PS frac=" + TablePrinter::Num(f, 2));
  }
  run_pr(Mode::kSpark, 0.4, jvm::GcAlgorithm::kConcurrentMarkSweep,
         "CMS frac=0.4");
  run_pr(Mode::kSpark, 0.4, jvm::GcAlgorithm::kG1, "G1 frac=0.4");
  run_pr(Mode::kDeca, 0.4, jvm::GcAlgorithm::kParallelScavenge, "Deca");

  t.Print();
  std::printf(
      "\nExpected shape (paper): LR improves dramatically with the right\n"
      "fraction or with CMS/G1 (GC pauses mostly move to concurrent time),\n"
      "but remains above Deca; PR is much less sensitive to GC tuning.\n");
  return 0;
}
