// Reproduces Table 5: controlled single-executor microbenchmarks that
// isolate CPU and GC effects from scheduling and I/O — LR and PR with a
// small heap (GC-bound) and a large heap (GC-free), for Spark / Deca /
// SparkSer, plus the average per-object serialization and deserialization
// cost of the Kryo-style serializer vs Deca's decomposition.

#include "bench_util.h"
#include "common/clock.h"
#include "workloads/graph.h"
#include "workloads/lr.h"

using namespace deca;
using namespace deca::bench;
using namespace deca::workloads;

int main(int argc, char** argv) {
  BenchReport report("table5_micro", argc, argv);
  PrintHeader("Table 5: single-executor microbenchmark",
              "Table 5 — LR/PR x {small, large} heap x 3 systems",
              "One executor, one partition; heap sizes bracket the "
              "working set");
  TablePrinter t(
      {"app", "heap", "mode", "exec(ms)", "gc(ms)", "full GCs", "deser(ms)"});
  for (size_t heap_mb : {28, 256}) {
    for (Mode mode : {Mode::kSpark, Mode::kDeca, Mode::kSparkSer}) {
      MlParams p;
      p.num_points = 120'000;
      p.iterations = 20;
      p.mode = mode;
      p.spark = DefaultSpark(heap_mb);
      p.spark.num_executors = 1;
      p.spark.partitions_per_executor = 1;
      p.spark.storage_fraction = 0.9;
      LrResult r = RunLogisticRegression(p);
      report.AddRun("LR/" + std::to_string(heap_mb) + "MB/" + ModeName(mode),
                    r.run);
      t.AddRow({"LR", std::to_string(heap_mb) + "MB", ModeName(mode),
                Ms(r.run.exec_ms), Ms(r.run.gc_ms),
                std::to_string(r.run.full_gcs), Ms(r.run.deser_ms)});
    }
  }
  for (size_t heap_mb : {32, 256}) {
    for (Mode mode : {Mode::kSpark, Mode::kDeca, Mode::kSparkSer}) {
      GraphParams p;
      p.num_vertices = 1u << 15;
      p.num_edges = 1u << 19;  // Pokec-scale ratio (1.6M V / 30M E)
      p.iterations = 6;
      p.mode = mode;
      p.spark = DefaultSpark(heap_mb);
      p.spark.num_executors = 1;
      p.spark.partitions_per_executor = 1;
      p.spark.storage_fraction = 0.4;
      PageRankResult r = RunPageRank(p);
      report.AddRun("PR/" + std::to_string(heap_mb) + "MB/" + ModeName(mode),
                    r.run);
      t.AddRow({"PR", std::to_string(heap_mb) + "MB", ModeName(mode),
                Ms(r.run.exec_ms), Ms(r.run.gc_ms),
                std::to_string(r.run.full_gcs), Ms(r.run.deser_ms)});
    }
  }
  t.Print();

  // -- per-object serialization cost (bottom of Table 5).
  {
    jvm::ClassRegistry registry;
    LrTypes types(&registry, 10);
    jvm::HeapConfig hc;
    hc.heap_bytes = 64u << 20;
    jvm::Heap heap(hc, &registry);
    jvm::HandleScope scope(&heap);
    double feats[10];
    for (int j = 0; j < 10; ++j) feats[j] = j * 0.25;
    jvm::Handle lp = scope.Make(types.NewLabeledPoint(&heap, 1.0, feats));
    const int kReps = 200'000;

    ByteWriter w;
    Stopwatch ser_sw;
    for (int i = 0; i < kReps; ++i) {
      w.Clear();
      types.ops().serialize(&heap, lp.get(), &w);
    }
    double kryo_ser_us = ser_sw.ElapsedMillis() * 1000.0 / kReps;

    Stopwatch deser_sw;
    for (int i = 0; i < kReps; ++i) {
      jvm::HandleScope inner(&heap);
      ByteReader r(w.data(), w.size());
      types.ops().deserialize(&heap, &r);
    }
    double kryo_deser_us = deser_sw.ElapsedMillis() * 1000.0 / kReps;

    std::vector<uint8_t> seg(types.ops().deca_bytes(&heap, lp.get()));
    Stopwatch dser_sw;
    for (int i = 0; i < kReps; ++i) {
      types.ops().decompose(&heap, lp.get(), seg.data());
    }
    double deca_ser_us = dser_sw.ElapsedMillis() * 1000.0 / kReps;

    TablePrinter st({"cost per object", "Deca", "Kryo"});
    st.AddRow({"serialize (us)", TablePrinter::Num(deca_ser_us, 3),
               TablePrinter::Num(kryo_ser_us, 3)});
    st.AddRow({"deserialize (us)", "0 (direct access)",
               TablePrinter::Num(kryo_deser_us, 3)});
    std::printf("\n");
    st.Print();
  }
  std::printf(
      "\nExpected shape (paper Table 5): with a large heap Deca ~= Spark\n"
      "and SparkSer loses to deserialization; with a small heap Spark\n"
      "becomes GC-bound while Deca stays flat. Deca's per-object\n"
      "serialization cost matches Kryo's, and it pays no deserialization.\n");
  return 0;
}
