// Reproduces Figure 8(a): lifetimes of shuffle-buffer objects in WordCount.
// The paper plots the number of live Tuple2 objects and cumulative GC time
// over the run for Spark and Deca; Spark's count fluctuates with the
// eagerly-combined hash buffer and GCs fire repeatedly, while Deca keeps
// the combined values in reused page segments (no Tuple2s at all).

#include "bench_util.h"
#include "workloads/wordcount.h"

using namespace deca;
using namespace deca::bench;
using namespace deca::workloads;

int main(int argc, char** argv) {
  BenchReport report("fig08_wc_lifetime", argc, argv);
  PrintHeader("Figure 8(a): WordCount shuffle-object lifetimes",
              "Fig. 8(a) — live Tuple2 count + GC time over run time",
              "Scaled: 3M words, 200k distinct keys, 2 executors x 64MB");
  WordCountParams p;
  p.total_words = 3'000'000;
  p.distinct_keys = 200'000;
  p.spark = DefaultSpark();
  p.profile = true;
  p.profile_every = 100'000;

  for (Mode mode : {Mode::kSpark, Mode::kDeca}) {
    p.mode = mode;
    WordCountResult r = RunWordCount(p);
    report.AddRun(ModeName(mode), r.run);
    std::printf("\n--- %s: exec=%.0fms gc=%.1fms (minor=%llu full=%llu)\n",
                ModeName(mode), r.run.exec_ms, r.run.gc_ms,
                static_cast<unsigned long long>(r.run.minor_gcs),
                static_cast<unsigned long long>(r.run.full_gcs));
    PrintSeries(std::string(ModeName(mode)) + "-Tuple2 live objects",
                r.run.object_counts);
    PrintSeries(std::string(ModeName(mode)) + "-cumulative GC ms",
                r.run.gc_series);
  }
  std::printf(
      "\nExpected shape: Spark's Tuple2 count stays in the hundreds of\n"
      "thousands and its GC time climbs steadily; Deca holds zero Tuple2\n"
      "objects and (near-)zero GC time.\n");
  return 0;
}
