// Reproduces Figure 9(a): lifetimes of cached LabeledPoint objects in
// Logistic Regression. Spark's cached object count is flat and high for
// the whole run (full GCs repeatedly trace them in vain); Deca's points
// live as decomposed bytes, so the tracked count is (near) zero.

#include "bench_util.h"
#include "workloads/lr.h"

using namespace deca;
using namespace deca::bench;
using namespace deca::workloads;

int main(int argc, char** argv) {
  BenchReport report("fig09_lr_lifetime", argc, argv);
  PrintHeader("Figure 9(a): LR cached-object lifetimes",
              "Fig. 9(a) — live LabeledPoint count + GC time over run time",
              "Scaled: 480k 10-dim points, 15 iterations, 2 x 64MB heaps");
  MlParams p;
  p.dims = 10;
  p.num_points = 480'000;
  p.iterations = 15;
  p.spark = DefaultSpark();
  p.spark.storage_fraction = 0.9;
  p.profile = true;

  for (Mode mode : {Mode::kSpark, Mode::kDeca}) {
    p.mode = mode;
    LrResult r = RunLogisticRegression(p);
    report.AddRun(ModeName(mode), r.run);
    std::printf("\n--- %s: exec=%.0fms gc=%.1fms (minor=%llu full=%llu)\n",
                ModeName(mode), r.run.exec_ms, r.run.gc_ms,
                static_cast<unsigned long long>(r.run.minor_gcs),
                static_cast<unsigned long long>(r.run.full_gcs));
    PrintSeries(std::string(ModeName(mode)) + "-LabeledPoint live objects",
                r.run.object_counts);
    PrintSeries(std::string(ModeName(mode)) + "-cumulative GC ms",
                r.run.gc_series);
  }
  std::printf(
      "\nExpected shape: Spark's LabeledPoint count is large and constant\n"
      "across iterations while GC time climbs; Deca tracks zero points.\n");
  return 0;
}
