#!/usr/bin/env bash
# Regenerates the committed bench baselines (bench/baselines/*.json) at
# the scale the CI bench-gate runs them (DECA_SCALE=8, tracing on, local
# shuffle). Run from anywhere; pass the build directory as $1 if it is
# not ./build. After regenerating, eyeball `git diff bench/baselines/` —
# deterministic counters should only change when the engine's observable
# behaviour intentionally changed; wall-time drift alone is expected and
# harmless (the gate's time threshold is loose).
#
# Reports are RunReport schema v5 (v4 files still parse): the `alloc`
# aggregate records the allocator plane. alloc.allocs / alloc.frees /
# alloc.bytes_requested are deterministic (identical under DECA_ARENA=0
# and 1); the remaining alloc.* metrics are environment-dependent and
# recorded as inexact. Baselines are generated arena-off — the CI arena
# leg diffs DECA_ARENA=1 runs against them with --exact-only.
#
#   ./bench/update_baselines.sh [build-dir]
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"
out="$repo/bench/baselines"
# Stream benches run the shortened CI steady state (DECA_STREAM_EPOCHS=48,
# matching the bench-smoke job): epoch counters are bit-compared against
# these baselines, so the epoch count must agree between the two.
benches=(fig08_wc_exec fig09_lr_exec fig11_breakdown stream_wordcount stream_sessionize serve_cache)

for b in "${benches[@]}"; do
  if [[ ! -x "$build/bench/$b" ]]; then
    echo "error: $build/bench/$b not built (cmake --build $build --target $b)" >&2
    exit 1
  fi
done

mkdir -p "$out"
for b in "${benches[@]}"; do
  echo "== $b (DECA_SCALE=8) =="
  # Baselines are recorded over the local shuffle; the CI network leg
  # diffs its loopback runs against these same files (extra runs and
  # net.* metrics are allowed additions in report_diff).
  DECA_SCALE=8 DECA_TRACE=1 DECA_SHUFFLE_TRANSPORT=local \
    DECA_STREAM_EPOCHS=48 \
    DECA_JSON_OUT="$out/$b.json" \
    "$build/bench/$b" > /dev/null
  "$build/bench/report_diff" --validate "$out/$b.json"
done

echo "Baselines written to $out; review with: git diff bench/baselines/"
