// Closed-loop query serving against a cached user table larger than
// executor memory (ROADMAP open item 3). Grid: {legacy 2-tier store,
// 3-tier store} x {Spark-PS, Spark-G1, Deca pages}. The working set is
// sized to ~2x the unified executor budget, so the cold tail always
// lives below T0: the 2-tier store thrashes it to disk, the 3-tier
// store compacts it into serialized off-heap buffers first and re-admits
// hot blocks under the admission policy. Every variant must read the
// same record values — the query digest is cross-checked and a mismatch
// fails the run.

#include <string>

#include "bench_util.h"
#include "workloads/serve_entry.h"

using namespace deca;
using namespace deca::bench;
using namespace deca::workloads;

int main(int argc, char** argv) {
  BenchReport report("serve_cache", argc, argv);
  PrintHeader("Serve-cache: tiered block store under point queries",
              "\"GC or Serialization?\" middle tier x paper Section 6 modes",
              "Zipf(1.05) point queries, working set ~2x executor memory");

  const uint64_t records = Scaled(96'000);
  const int dims = 16;

  TablePrinter t({"variant", "exec(ms)", "qps", "p50(ms)", "p99(ms)",
                  "t0/t1/t2 hit%", "t1 res(MB)", "swap(MB)", "gc(ms)"});

  uint64_t digest = 0;
  bool first = true;
  bool digest_ok = true;

  auto run = [&](Mode mode, jvm::GcAlgorithm algo, int tiers,
                 const std::string& label) {
    ServeParams p;
    p.num_records = records;
    p.record_doubles = dims;
    p.queries_per_task = static_cast<int>(Scaled(512));
    p.serve_stages = 6;
    p.mode = mode;
    p.seed = 42;
    p.spark = DefaultSpark();
    p.spark.heap.algorithm = algo;
    p.spark.storage_tiers = tiers;
    // Working set >= 2x memory at any DECA_SCALE: the unified budget is
    // half the raw table bytes each executor holds (overrides
    // DECA_EXECUTOR_MEMORY — the ratio is the experiment).
    uint64_t per_exec =
        records / static_cast<uint64_t>(p.spark.num_executors);
    uint64_t raw_bytes = per_exec * (8 + 8 * static_cast<uint64_t>(dims));
    p.spark.executor_memory_bytes = static_cast<size_t>(
        std::max<uint64_t>(raw_bytes / 2, 256u << 10));

    ServeResult r = RunServeCache(p);
    report.AddRun(label, r.run);
    report.AddMetric("serve.queries", static_cast<double>(r.queries), true);
    // The 64-bit digest split in exact halves (a double carries 53 bits).
    report.AddMetric("serve.digest_lo",
                     static_cast<double>(static_cast<uint32_t>(r.digest)),
                     true);
    report.AddMetric(
        "serve.digest_hi",
        static_cast<double>(static_cast<uint32_t>(r.digest >> 32)), true);
    report.AddMetric("serve.latency_p50_ms", r.latency_p50_ms, false);
    report.AddMetric("serve.latency_p99_ms", r.latency_p99_ms, false);

    const spark::TierCounters& tc = r.run.tier;
    uint64_t lookups = tc.t0_hits + tc.t1_hits + tc.t2_hits + tc.misses;
    auto rate = [lookups](uint64_t h) {
      return lookups > 0
                 ? TablePrinter::Num(100.0 * static_cast<double>(h) /
                                         static_cast<double>(lookups),
                                     0)
                 : std::string("0");
    };
    t.AddRow({label, Ms(r.run.exec_ms), TablePrinter::Num(r.qps, 0),
              TablePrinter::Num(r.latency_p50_ms, 3),
              TablePrinter::Num(r.latency_p99_ms, 3),
              rate(tc.t0_hits) + "/" + rate(tc.t1_hits) + "/" +
                  rate(tc.t2_hits),
              Mb(static_cast<double>(tc.t1_resident_bytes) / (1 << 20)),
              Mb(r.run.swapped_mb), Ms(r.run.gc_ms)});

    if (first) {
      digest = r.digest;
      first = false;
    } else if (r.digest != digest) {
      digest_ok = false;
      std::fprintf(stderr,
                   "DIGEST MISMATCH: %s read %016llx, expected %016llx\n",
                   label.c_str(),
                   static_cast<unsigned long long>(r.digest),
                   static_cast<unsigned long long>(digest));
    }
  };

  for (int tiers : {2, 3}) {
    std::string suffix = "/T" + std::to_string(tiers);
    run(Mode::kSpark, jvm::GcAlgorithm::kParallelScavenge, tiers,
        "Spark-PS" + suffix);
    run(Mode::kSpark, jvm::GcAlgorithm::kG1, tiers, "Spark-G1" + suffix);
    run(Mode::kDeca, jvm::GcAlgorithm::kParallelScavenge, tiers,
        "Deca" + suffix);
  }

  t.Print();
  std::printf(
      "\nExpected shape: with the 3-tier store (T3 rows) the cold tail\n"
      "sits in serialized off-heap buffers instead of swap files — disk\n"
      "traffic and tail latency drop, and the GC-managed variants also\n"
      "trace fewer live objects. Deca pages serve raw-byte reads in every\n"
      "tier, so they keep the flattest latency profile. The digest is\n"
      "identical across all six variants by construction.\n");

  if (!digest_ok) {
    std::fprintf(stderr, "serve_cache: digest mismatch across variants\n");
    return 1;
  }
  return 0;
}
