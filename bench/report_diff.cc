// Compares two RunReport JSON files (see src/obs/run_report.h) and exits
// nonzero when the current report regresses from the baseline:
//   - exact metrics (deterministic counters, byte peaks) must match
//     bit-for-bit,
//   - time metrics may grow by at most --time-threshold (relative) AND
//     --time-floor-ms (absolute slack, so micro-benches don't flap),
//   - span counts are exact, span totals follow the time rule,
//   - with --exact-only, only exact metrics and deterministic epoch
//     counters are compared (time metrics and spans skipped) — for
//     diffing a DECA_DIST_MODE=process run against an in-process
//     baseline, where timings and worker-side spans legitimately differ.
//
// SLO assertions: each --slo gate is an absolute ceiling on a flat run
// metric, checked against the CURRENT report (the only file in
// single-report mode). "metric<=value" applies to every run carrying the
// metric; "label:metric<=value" to that run only. A gate whose metric
// appears in no matching run fails — a silently missing latency metric
// must not pass a latency SLO. Unlike baseline diffs, SLO gates also work
// for runs whose counters are legitimately nondeterministic (e.g.
// budgeted mark slices under DECA_PAUSE_BUDGET_MS>0).
//
// Usage:
//   report_diff [--time-threshold=F] [--time-floor-ms=F] [--exact-only]
//               [--slo=SPEC]... BASELINE CURRENT
//   report_diff [--slo=SPEC]... REPORT
//   report_diff --validate REPORT
//
// Exit codes: 0 ok, 1 regression/SLO violation/schema mismatch,
// 2 usage/I/O error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/run_report.h"

namespace {

bool ReadTextFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

bool LoadReport(const std::string& path, deca::obs::RunReport* report) {
  std::string text;
  if (!ReadTextFile(path, &text)) {
    std::fprintf(stderr, "report_diff: cannot read %s\n", path.c_str());
    return false;
  }
  std::string err;
  if (!deca::obs::FromJson(text, report, &err)) {
    std::fprintf(stderr, "report_diff: %s: %s\n", path.c_str(), err.c_str());
    return false;
  }
  if (!deca::obs::Validate(*report, &err)) {
    std::fprintf(stderr, "report_diff: %s: invalid report: %s\n",
                 path.c_str(), err.c_str());
    return false;
  }
  return true;
}

/// One parsed --slo gate: `metric` must be <= `limit` in every matching
/// run (all runs when `label` is empty).
struct SloSpec {
  std::string label;
  std::string metric;
  double limit = 0;
  std::string text;  // original spec, for messages
};

bool ParseSlo(const std::string& spec, SloSpec* out) {
  size_t le = spec.find("<=");
  if (le == std::string::npos || le == 0) return false;
  std::string lhs = spec.substr(0, le);
  const char* rhs = spec.c_str() + le + 2;
  char* end = nullptr;
  out->limit = std::strtod(rhs, &end);
  if (end == rhs || *end != '\0') return false;
  size_t colon = lhs.find(':');
  if (colon != std::string::npos) {
    out->label = lhs.substr(0, colon);
    out->metric = lhs.substr(colon + 1);
  } else {
    out->metric = lhs;
  }
  out->text = spec;
  return !out->metric.empty();
}

/// Checks every gate against `report`; returns the number of violations
/// (a gate whose metric is absent from every matching run counts as one).
int CheckSlos(const deca::obs::RunReport& report,
              const std::vector<SloSpec>& slos) {
  int violations = 0;
  for (const SloSpec& slo : slos) {
    bool matched = false;
    for (const deca::obs::ReportRun& run : report.runs) {
      if (!slo.label.empty() && run.label != slo.label) continue;
      const deca::obs::ReportMetric* m = run.Find(slo.metric);
      if (m == nullptr) continue;
      matched = true;
      if (m->value <= slo.limit) {
        std::printf("report_diff: SLO ok: %s: %s = %g (<= %g)\n",
                    run.label.c_str(), slo.metric.c_str(), m->value,
                    slo.limit);
      } else {
        std::fprintf(stderr,
                     "report_diff: SLO violated: %s: %s = %g exceeds %g\n",
                     run.label.c_str(), slo.metric.c_str(), m->value,
                     slo.limit);
        ++violations;
      }
    }
    if (!matched) {
      std::fprintf(stderr,
                   "report_diff: SLO '%s': metric '%s' not found in any "
                   "matching run\n",
                   slo.text.c_str(), slo.metric.c_str());
      ++violations;
    }
  }
  return violations;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: report_diff [--time-threshold=F] [--time-floor-ms=F] "
      "[--exact-only] [--slo=[LABEL:]METRIC<=VALUE]... BASELINE CURRENT\n"
      "       report_diff [--slo=[LABEL:]METRIC<=VALUE]... REPORT\n"
      "       report_diff --validate REPORT\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  deca::obs::DiffOptions opt;
  bool validate_only = false;
  std::vector<SloSpec> slos;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--validate") {
      validate_only = true;
    } else if (arg.rfind("--time-threshold=", 0) == 0) {
      opt.time_threshold =
          std::atof(arg.c_str() + std::strlen("--time-threshold="));
    } else if (arg.rfind("--time-floor-ms=", 0) == 0) {
      opt.time_floor_ms =
          std::atof(arg.c_str() + std::strlen("--time-floor-ms="));
    } else if (arg == "--exact-only") {
      opt.exact_only = true;
    } else if (arg.rfind("--slo=", 0) == 0 || arg == "--slo") {
      std::string spec;
      if (arg == "--slo") {
        if (i + 1 >= argc) return Usage();
        spec = argv[++i];
      } else {
        spec = arg.substr(std::strlen("--slo="));
      }
      SloSpec slo;
      if (!ParseSlo(spec, &slo)) {
        std::fprintf(stderr, "report_diff: bad --slo spec '%s'\n",
                     spec.c_str());
        return Usage();
      }
      slos.push_back(std::move(slo));
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "report_diff: unknown flag %s\n", arg.c_str());
      return Usage();
    } else {
      files.push_back(arg);
    }
  }

  if (validate_only) {
    if (files.size() != 1) return Usage();
    deca::obs::RunReport report;
    // LoadReport validates after parsing; exit 1 distinguishes a bad
    // report from usage errors only via the message, matching diff mode.
    if (!LoadReport(files[0], &report)) return 1;
    std::printf("%s: valid %s v%d report, bench '%s', %zu run(s)\n",
                files[0].c_str(), deca::obs::RunReport::kSchema,
                deca::obs::RunReport::kVersion, report.bench.c_str(),
                report.runs.size());
    return 0;
  }

  if (files.size() == 1 && !slos.empty()) {
    // SLO-only mode: absolute ceilings on a single report, no baseline.
    deca::obs::RunReport report;
    if (!LoadReport(files[0], &report)) return 2;
    int violations = CheckSlos(report, slos);
    if (violations > 0) {
      std::fprintf(stderr, "report_diff: %d SLO violation(s)\n", violations);
      return 1;
    }
    std::printf("report_diff: OK — %zu SLO gate(s) hold\n", slos.size());
    return 0;
  }

  if (files.size() != 2) return Usage();
  deca::obs::RunReport baseline;
  deca::obs::RunReport current;
  if (!LoadReport(files[0], &baseline)) return 2;
  if (!LoadReport(files[1], &current)) return 2;

  deca::obs::DiffResult result =
      deca::obs::DiffReports(baseline, current, opt);
  int violations = CheckSlos(current, slos);
  if (result.ok() && violations == 0) {
    std::printf(
        "report_diff: OK — %zu run(s) within thresholds "
        "(time +%.0f%%, floor %.1f ms)",
        baseline.runs.size(), opt.time_threshold * 100.0, opt.time_floor_ms);
    if (!slos.empty()) {
      std::printf(", %zu SLO gate(s) hold", slos.size());
    }
    std::printf("\n");
    return 0;
  }
  if (!result.ok()) {
    std::fprintf(stderr, "report_diff: %zu regression(s):\n",
                 result.failures.size());
    for (const std::string& f : result.failures) {
      std::fprintf(stderr, "  %s\n", f.c_str());
    }
  }
  if (violations > 0) {
    std::fprintf(stderr, "report_diff: %d SLO violation(s)\n", violations);
  }
  return 1;
}
