// Compares two RunReport JSON files (see src/obs/run_report.h) and exits
// nonzero when the current report regresses from the baseline:
//   - exact metrics (deterministic counters, byte peaks) must match
//     bit-for-bit,
//   - time metrics may grow by at most --time-threshold (relative) AND
//     --time-floor-ms (absolute slack, so micro-benches don't flap),
//   - span counts are exact, span totals follow the time rule,
//   - with --exact-only, only exact metrics and deterministic epoch
//     counters are compared (time metrics and spans skipped) — for
//     diffing a DECA_DIST_MODE=process run against an in-process
//     baseline, where timings and worker-side spans legitimately differ.
//
// Usage:
//   report_diff [--time-threshold=F] [--time-floor-ms=F] [--exact-only]
//               BASELINE CURRENT
//   report_diff --validate REPORT
//
// Exit codes: 0 ok, 1 regression or schema mismatch, 2 usage/I/O error.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/run_report.h"

namespace {

bool ReadTextFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

bool LoadReport(const std::string& path, deca::obs::RunReport* report) {
  std::string text;
  if (!ReadTextFile(path, &text)) {
    std::fprintf(stderr, "report_diff: cannot read %s\n", path.c_str());
    return false;
  }
  std::string err;
  if (!deca::obs::FromJson(text, report, &err)) {
    std::fprintf(stderr, "report_diff: %s: %s\n", path.c_str(), err.c_str());
    return false;
  }
  if (!deca::obs::Validate(*report, &err)) {
    std::fprintf(stderr, "report_diff: %s: invalid report: %s\n",
                 path.c_str(), err.c_str());
    return false;
  }
  return true;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: report_diff [--time-threshold=F] [--time-floor-ms=F] "
      "[--exact-only] BASELINE CURRENT\n"
      "       report_diff --validate REPORT\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  deca::obs::DiffOptions opt;
  bool validate_only = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--validate") {
      validate_only = true;
    } else if (arg.rfind("--time-threshold=", 0) == 0) {
      opt.time_threshold =
          std::atof(arg.c_str() + std::strlen("--time-threshold="));
    } else if (arg.rfind("--time-floor-ms=", 0) == 0) {
      opt.time_floor_ms =
          std::atof(arg.c_str() + std::strlen("--time-floor-ms="));
    } else if (arg == "--exact-only") {
      opt.exact_only = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "report_diff: unknown flag %s\n", arg.c_str());
      return Usage();
    } else {
      files.push_back(arg);
    }
  }

  if (validate_only) {
    if (files.size() != 1) return Usage();
    deca::obs::RunReport report;
    // LoadReport validates after parsing; exit 1 distinguishes a bad
    // report from usage errors only via the message, matching diff mode.
    if (!LoadReport(files[0], &report)) return 1;
    std::printf("%s: valid %s v%d report, bench '%s', %zu run(s)\n",
                files[0].c_str(), deca::obs::RunReport::kSchema,
                deca::obs::RunReport::kVersion, report.bench.c_str(),
                report.runs.size());
    return 0;
  }

  if (files.size() != 2) return Usage();
  deca::obs::RunReport baseline;
  deca::obs::RunReport current;
  if (!LoadReport(files[0], &baseline)) return 2;
  if (!LoadReport(files[1], &current)) return 2;

  deca::obs::DiffResult result =
      deca::obs::DiffReports(baseline, current, opt);
  if (result.ok()) {
    std::printf(
        "report_diff: OK — %zu run(s) within thresholds "
        "(time +%.0f%%, floor %.1f ms)\n",
        baseline.runs.size(), opt.time_threshold * 100.0, opt.time_floor_ms);
    return 0;
  }
  std::fprintf(stderr, "report_diff: %zu regression(s):\n",
               result.failures.size());
  for (const std::string& f : result.failures) {
    std::fprintf(stderr, "  %s\n", f.c_str());
  }
  return 1;
}
