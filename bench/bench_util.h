#ifndef DECA_BENCH_BENCH_UTIL_H_
#define DECA_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/table_printer.h"
#include "workloads/common.h"

namespace deca::bench {

/// Typed DECA_* environment lookups — the one place bench knobs are
/// parsed. Each returns `def` when the variable is unset (or, for the
/// numeric guards, unparsable/non-positive where noted).
inline int EnvInt(const char* name, int def, int min_value = 1) {
  const char* e = std::getenv(name);
  if (e == nullptr) return def;
  int n = std::atoi(e);
  return n >= min_value ? n : def;
}
inline double EnvDouble(const char* name, double def) {
  const char* e = std::getenv(name);
  return e != nullptr ? std::atof(e) : def;
}
inline uint64_t EnvU64(const char* name, uint64_t def) {
  const char* e = std::getenv(name);
  return e != nullptr ? std::strtoull(e, nullptr, 10) : def;
}

/// Prints the effective engine configuration once per process, so a bench
/// log always records which knobs (env or default) produced its numbers.
inline void PrintEffectiveConfigOnce(const spark::SparkConfig& cfg) {
  static bool printed = false;
  if (printed) return;
  printed = true;
  std::printf(
      "config: executors=%d threads=%d heap=%zuMB executor_memory=%zuMB "
      "storage_fraction=%.2f page=%uKB\n",
      cfg.num_executors, cfg.num_worker_threads, cfg.heap.heap_bytes >> 20,
      cfg.executor_memory() >> 20, cfg.storage_fraction,
      cfg.deca_page_bytes >> 10);
}

/// Default executor sizing used across the reproduction benches: two
/// executors with 64 MB heaps stand in for the paper's five 30 GB workers
/// (a ~1000x uniform down-scale; all reported effects are ratios).
///
/// Environment overrides (results stay bit-identical across both):
///   DECA_EXECUTORS=N        executor count (default 2)
///   DECA_WORKER_THREADS=N   parallel runtime threads (default 0 =
///                           sequential driver loop)
///   DECA_EXECUTOR_MEMORY=MB unified per-executor memory budget
///                           (default 0 = heap * memory_fraction)
///   DECA_STORAGE_FRACTION=F storage-pool floor share of the budget
///                           (default 0.5)
///
/// Deterministic fault injection (default off; numbers are unchanged and
/// no retry counters increment unless one of these is set):
///   DECA_FAULT_SEED=N        injection seed (default 1)
///   DECA_FAULT_TASK_PROB=P   per-attempt injected task-failure probability
///   DECA_FAULT_FETCH_PROB=P  per-attempt shuffle-fetch failure probability
///   DECA_FAULT_OOM_PROB=P    per-attempt forced allocation-failure prob.
///   DECA_CRASH_WIPE_STAGE=N / DECA_CRASH_WIPE_EXECUTOR=E
///                            crash-wipe executor E before stage N
inline spark::SparkConfig DefaultSpark(size_t heap_mb = 64) {
  spark::SparkConfig cfg;
  cfg.partitions_per_executor = 2;
  cfg.num_executors = EnvInt("DECA_EXECUTORS", 2);
  cfg.num_worker_threads = EnvInt("DECA_WORKER_THREADS", 0);
  cfg.fault.seed = EnvU64("DECA_FAULT_SEED", cfg.fault.seed);
  cfg.fault.task_failure_prob =
      EnvDouble("DECA_FAULT_TASK_PROB", cfg.fault.task_failure_prob);
  cfg.fault.fetch_failure_prob =
      EnvDouble("DECA_FAULT_FETCH_PROB", cfg.fault.fetch_failure_prob);
  cfg.fault.oom_failure_prob =
      EnvDouble("DECA_FAULT_OOM_PROB", cfg.fault.oom_failure_prob);
  cfg.fault.crash_wipe_stage =
      EnvInt("DECA_CRASH_WIPE_STAGE", cfg.fault.crash_wipe_stage, INT32_MIN);
  cfg.fault.crash_wipe_executor = EnvInt("DECA_CRASH_WIPE_EXECUTOR",
                                         cfg.fault.crash_wipe_executor,
                                         INT32_MIN);
  cfg.heap.heap_bytes = heap_mb << 20;
  cfg.memory_fraction = 0.75;
  cfg.executor_memory_bytes =
      static_cast<size_t>(EnvU64("DECA_EXECUTOR_MEMORY", 0)) << 20;
  cfg.storage_fraction =
      EnvDouble("DECA_STORAGE_FRACTION", cfg.storage_fraction);
  cfg.spill_dir = "/tmp/deca_bench_spill";
  PrintEffectiveConfigOnce(cfg);
  return cfg;
}

/// Accumulates the fault-tolerance counters across a bench's runs and
/// prints a summary table — only when something actually fired, so
/// fault-free bench output is byte-identical to before.
struct FaultTotals {
  uint64_t task_retries = 0;
  uint64_t injected_faults = 0;
  uint64_t executor_wipes = 0;
  uint64_t recomputed_blocks = 0;
  uint64_t pressure_evictions = 0;
  uint64_t oom_recoveries = 0;

  void Add(const workloads::RunResult& r) {
    task_retries += r.task_retries;
    injected_faults += r.injected_faults;
    executor_wipes += r.executor_wipes;
    recomputed_blocks += r.recomputed_blocks;
    pressure_evictions += r.pressure_evictions;
    oom_recoveries += r.oom_recoveries;
  }
  bool any() const {
    return task_retries + injected_faults + executor_wipes +
               recomputed_blocks + pressure_evictions + oom_recoveries >
           0;
  }
  void PrintIfAny() const {
    if (!any()) return;
    std::printf("\nFault tolerance (injection active):\n");
    TablePrinter t({"retries", "injected", "wipes", "recomputed",
                    "evictions", "oom rescues"});
    t.AddRow({std::to_string(task_retries), std::to_string(injected_faults),
              std::to_string(executor_wipes),
              std::to_string(recomputed_blocks),
              std::to_string(pressure_evictions),
              std::to_string(oom_recoveries)});
    t.Print();
  }
};

/// Prints one row per executor from a run's memory-manager snapshots:
/// budget, pool peaks, borrowing high-water mark and denied reservations.
inline void PrintExecutorMemory(const workloads::RunResult& r) {
  if (r.executor_memory.empty()) return;
  std::printf("\nPer-executor memory (%s):\n", workloads::ModeName(r.mode));
  TablePrinter t({"exec", "budget(MB)", "heap(MB)", "exec peak(MB)",
                  "storage peak(MB)", "borrowed(MB)", "denied"});
  const double mb = 1 << 20;
  for (size_t i = 0; i < r.executor_memory.size(); ++i) {
    const memory::MemoryStats& m = r.executor_memory[i];
    t.AddRow({std::to_string(i),
              TablePrinter::Num(static_cast<double>(m.total_bytes) / mb, 1),
              TablePrinter::Num(static_cast<double>(m.heap_capacity) / mb, 1),
              TablePrinter::Num(static_cast<double>(m.exec_peak) / mb, 1),
              TablePrinter::Num(static_cast<double>(m.storage_peak) / mb, 1),
              TablePrinter::Num(static_cast<double>(m.borrowed_peak) / mb, 1),
              std::to_string(m.denied_reservations)});
  }
  t.Print();
}

inline void PrintHeader(const std::string& title, const std::string& paper_ref,
                        const std::string& notes) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  if (!notes.empty()) std::printf("%s\n", notes.c_str());
  std::printf("================================================================\n");
}

inline std::string Ms(double v) { return TablePrinter::Num(v, 1); }
inline std::string Mb(double v) { return TablePrinter::Num(v, 1); }
inline std::string Pct(double v) { return TablePrinter::Num(v, 1) + "%"; }
inline std::string Speedup(double base, double v) {
  return TablePrinter::Num(base / v, 2) + "x";
}

/// Emits a (time, value) series as compact table rows, downsampled to at
/// most `max_rows` points.
inline void PrintSeries(const std::string& name, const TimeSeries& ts,
                        int max_rows = 16) {
  std::printf("%s (%zu samples):\n", name.c_str(), ts.size());
  if (ts.size() == 0) return;
  size_t step = ts.size() <= static_cast<size_t>(max_rows)
                    ? 1
                    : ts.size() / static_cast<size_t>(max_rows);
  TablePrinter t({"t(ms)", "value"});
  for (size_t i = 0; i < ts.size(); i += step) {
    t.AddRow({TablePrinter::Num(ts.times_ms[i], 0),
              TablePrinter::Num(ts.values[i], 0)});
  }
  t.Print();
}

}  // namespace deca::bench

#endif  // DECA_BENCH_BENCH_UTIL_H_
