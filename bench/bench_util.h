#ifndef DECA_BENCH_BENCH_UTIL_H_
#define DECA_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/table_printer.h"
#include "workloads/common.h"

namespace deca::bench {

/// Default executor sizing used across the reproduction benches: two
/// executors with 64 MB heaps stand in for the paper's five 30 GB workers
/// (a ~1000x uniform down-scale; all reported effects are ratios).
///
/// Environment overrides (results stay bit-identical across both):
///   DECA_EXECUTORS=N       executor count (default 2)
///   DECA_WORKER_THREADS=N  parallel runtime threads (default 0 =
///                          sequential driver loop)
inline spark::SparkConfig DefaultSpark(size_t heap_mb = 64) {
  spark::SparkConfig cfg;
  cfg.num_executors = 2;
  cfg.partitions_per_executor = 2;
  if (const char* e = std::getenv("DECA_EXECUTORS")) {
    int n = std::atoi(e);
    if (n > 0) cfg.num_executors = n;
  }
  if (const char* e = std::getenv("DECA_WORKER_THREADS")) {
    int n = std::atoi(e);
    if (n > 0) cfg.num_worker_threads = n;
  }
  cfg.heap.heap_bytes = heap_mb << 20;
  cfg.memory_fraction = 0.75;
  cfg.spill_dir = "/tmp/deca_bench_spill";
  return cfg;
}

inline void PrintHeader(const std::string& title, const std::string& paper_ref,
                        const std::string& notes) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  if (!notes.empty()) std::printf("%s\n", notes.c_str());
  std::printf("================================================================\n");
}

inline std::string Ms(double v) { return TablePrinter::Num(v, 1); }
inline std::string Mb(double v) { return TablePrinter::Num(v, 1); }
inline std::string Pct(double v) { return TablePrinter::Num(v, 1) + "%"; }
inline std::string Speedup(double base, double v) {
  return TablePrinter::Num(base / v, 2) + "x";
}

/// Emits a (time, value) series as compact table rows, downsampled to at
/// most `max_rows` points.
inline void PrintSeries(const std::string& name, const TimeSeries& ts,
                        int max_rows = 16) {
  std::printf("%s (%zu samples):\n", name.c_str(), ts.size());
  if (ts.size() == 0) return;
  size_t step = ts.size() <= static_cast<size_t>(max_rows)
                    ? 1
                    : ts.size() / static_cast<size_t>(max_rows);
  TablePrinter t({"t(ms)", "value"});
  for (size_t i = 0; i < ts.size(); i += step) {
    t.AddRow({TablePrinter::Num(ts.times_ms[i], 0),
              TablePrinter::Num(ts.values[i], 0)});
  }
  t.Print();
}

}  // namespace deca::bench

#endif  // DECA_BENCH_BENCH_UTIL_H_
