#ifndef DECA_BENCH_BENCH_UTIL_H_
#define DECA_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/table_printer.h"
#include "workloads/common.h"

namespace deca::bench {

/// Default executor sizing used across the reproduction benches: two
/// executors with 64 MB heaps stand in for the paper's five 30 GB workers
/// (a ~1000x uniform down-scale; all reported effects are ratios).
///
/// Environment overrides (results stay bit-identical across both):
///   DECA_EXECUTORS=N       executor count (default 2)
///   DECA_WORKER_THREADS=N  parallel runtime threads (default 0 =
///                          sequential driver loop)
///
/// Deterministic fault injection (default off; numbers are unchanged and
/// no retry counters increment unless one of these is set):
///   DECA_FAULT_SEED=N        injection seed (default 1)
///   DECA_FAULT_TASK_PROB=P   per-attempt injected task-failure probability
///   DECA_FAULT_FETCH_PROB=P  per-attempt shuffle-fetch failure probability
///   DECA_FAULT_OOM_PROB=P    per-attempt forced allocation-failure prob.
///   DECA_CRASH_WIPE_STAGE=N / DECA_CRASH_WIPE_EXECUTOR=E
///                            crash-wipe executor E before stage N
inline spark::SparkConfig DefaultSpark(size_t heap_mb = 64) {
  spark::SparkConfig cfg;
  cfg.num_executors = 2;
  cfg.partitions_per_executor = 2;
  if (const char* e = std::getenv("DECA_EXECUTORS")) {
    int n = std::atoi(e);
    if (n > 0) cfg.num_executors = n;
  }
  if (const char* e = std::getenv("DECA_WORKER_THREADS")) {
    int n = std::atoi(e);
    if (n > 0) cfg.num_worker_threads = n;
  }
  if (const char* e = std::getenv("DECA_FAULT_SEED")) {
    cfg.fault.seed = std::strtoull(e, nullptr, 10);
  }
  if (const char* e = std::getenv("DECA_FAULT_TASK_PROB")) {
    cfg.fault.task_failure_prob = std::atof(e);
  }
  if (const char* e = std::getenv("DECA_FAULT_FETCH_PROB")) {
    cfg.fault.fetch_failure_prob = std::atof(e);
  }
  if (const char* e = std::getenv("DECA_FAULT_OOM_PROB")) {
    cfg.fault.oom_failure_prob = std::atof(e);
  }
  if (const char* e = std::getenv("DECA_CRASH_WIPE_STAGE")) {
    cfg.fault.crash_wipe_stage = std::atoi(e);
  }
  if (const char* e = std::getenv("DECA_CRASH_WIPE_EXECUTOR")) {
    cfg.fault.crash_wipe_executor = std::atoi(e);
  }
  cfg.heap.heap_bytes = heap_mb << 20;
  cfg.memory_fraction = 0.75;
  cfg.spill_dir = "/tmp/deca_bench_spill";
  return cfg;
}

/// Accumulates the fault-tolerance counters across a bench's runs and
/// prints a summary table — only when something actually fired, so
/// fault-free bench output is byte-identical to before.
struct FaultTotals {
  uint64_t task_retries = 0;
  uint64_t injected_faults = 0;
  uint64_t executor_wipes = 0;
  uint64_t recomputed_blocks = 0;
  uint64_t pressure_evictions = 0;
  uint64_t oom_recoveries = 0;

  void Add(const workloads::RunResult& r) {
    task_retries += r.task_retries;
    injected_faults += r.injected_faults;
    executor_wipes += r.executor_wipes;
    recomputed_blocks += r.recomputed_blocks;
    pressure_evictions += r.pressure_evictions;
    oom_recoveries += r.oom_recoveries;
  }
  bool any() const {
    return task_retries + injected_faults + executor_wipes +
               recomputed_blocks + pressure_evictions + oom_recoveries >
           0;
  }
  void PrintIfAny() const {
    if (!any()) return;
    std::printf("\nFault tolerance (injection active):\n");
    TablePrinter t({"retries", "injected", "wipes", "recomputed",
                    "evictions", "oom rescues"});
    t.AddRow({std::to_string(task_retries), std::to_string(injected_faults),
              std::to_string(executor_wipes),
              std::to_string(recomputed_blocks),
              std::to_string(pressure_evictions),
              std::to_string(oom_recoveries)});
    t.Print();
  }
};

inline void PrintHeader(const std::string& title, const std::string& paper_ref,
                        const std::string& notes) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  if (!notes.empty()) std::printf("%s\n", notes.c_str());
  std::printf("================================================================\n");
}

inline std::string Ms(double v) { return TablePrinter::Num(v, 1); }
inline std::string Mb(double v) { return TablePrinter::Num(v, 1); }
inline std::string Pct(double v) { return TablePrinter::Num(v, 1) + "%"; }
inline std::string Speedup(double base, double v) {
  return TablePrinter::Num(base / v, 2) + "x";
}

/// Emits a (time, value) series as compact table rows, downsampled to at
/// most `max_rows` points.
inline void PrintSeries(const std::string& name, const TimeSeries& ts,
                        int max_rows = 16) {
  std::printf("%s (%zu samples):\n", name.c_str(), ts.size());
  if (ts.size() == 0) return;
  size_t step = ts.size() <= static_cast<size_t>(max_rows)
                    ? 1
                    : ts.size() / static_cast<size_t>(max_rows);
  TablePrinter t({"t(ms)", "value"});
  for (size_t i = 0; i < ts.size(); i += step) {
    t.AddRow({TablePrinter::Num(ts.times_ms[i], 0),
              TablePrinter::Num(ts.values[i], 0)});
  }
  t.Print();
}

}  // namespace deca::bench

#endif  // DECA_BENCH_BENCH_UTIL_H_
