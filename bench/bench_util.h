#ifndef DECA_BENCH_BENCH_UTIL_H_
#define DECA_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "common/table_printer.h"
#include "obs/chrome_trace.h"
#include "obs/run_report.h"
#include "stream/stream_context.h"
#include "workloads/common.h"

namespace deca::bench {

/// Typed DECA_* environment lookups — the one place bench knobs are
/// parsed. Each returns `def` when the variable is unset (or, for the
/// numeric guards, unparsable/non-positive where noted).
inline int EnvInt(const char* name, int def, int min_value = 1) {
  const char* e = std::getenv(name);
  if (e == nullptr) return def;
  int n = std::atoi(e);
  return n >= min_value ? n : def;
}
inline double EnvDouble(const char* name, double def) {
  const char* e = std::getenv(name);
  return e != nullptr ? std::atof(e) : def;
}
inline uint64_t EnvU64(const char* name, uint64_t def) {
  const char* e = std::getenv(name);
  return e != nullptr ? std::strtoull(e, nullptr, 10) : def;
}
inline std::string EnvStr(const char* name, const std::string& def) {
  const char* e = std::getenv(name);
  return e != nullptr ? std::string(e) : def;
}

/// Uniform workload down-scale divisor (DECA_SCALE, default 1). CI's
/// bench-smoke job sets it so the figure benches finish in seconds; the
/// committed baselines are generated at the same scale, so deterministic
/// counters still compare exactly.
inline uint64_t Scaled(uint64_t n) {
  static const uint64_t scale =
      static_cast<uint64_t>(EnvInt("DECA_SCALE", 1));
  return std::max<uint64_t>(1, n / scale);
}

/// Process-wide "a machine-readable report/trace was requested" flag, set
/// by BenchReport before the first DefaultSpark call so every context the
/// bench creates records trace events.
inline bool& TraceRequested() {
  static bool v = false;
  return v;
}

/// Prints the effective engine configuration once per process, so a bench
/// log always records which knobs (env or default) produced its numbers.
inline void PrintEffectiveConfigOnce(const spark::SparkConfig& cfg) {
  static bool printed = false;
  if (printed) return;
  printed = true;
  std::printf(
      "config: executors=%d threads=%d heap=%zuMB executor_memory=%zuMB "
      "storage_fraction=%.2f page=%uKB transport=%s dist=%s\n",
      cfg.num_executors, cfg.num_worker_threads, cfg.heap.heap_bytes >> 20,
      cfg.executor_memory() >> 20, cfg.storage_fraction,
      cfg.deca_page_bytes >> 10,
      spark::ShuffleTransportName(cfg.shuffle_transport),
      spark::DistModeName(cfg.dist_mode));
  if (cfg.dist_mode == spark::DistMode::kProcess) {
    std::printf(
        "cluster: heartbeat=%dms miss_threshold=%d probes=%d "
        "backoff=%dms rpc_deadline=%dms\n",
        cfg.cluster.heartbeat_interval_ms, cfg.cluster.heartbeat_miss_threshold,
        cfg.cluster.reconnect_probes, cfg.cluster.retry_backoff_base_ms,
        cfg.cluster.rpc_deadline_ms);
  }
  if (cfg.t1_enabled()) {
    std::printf("tiers: storage_tiers=%d t1_fraction=%.2f admit=%s\n",
                cfg.storage_tiers, cfg.t1_fraction,
                spark::AdmitPolicyName(cfg.admit_policy));
  }
  if (cfg.heap.pause_budget_ms > 0 ||
      cfg.lifetime_source != spark::LifetimeSource::kStatic) {
    std::printf("gc: pause_budget=%.2fms lifetime_source=%s\n",
                cfg.heap.pause_budget_ms,
                spark::LifetimeSourceName(cfg.lifetime_source));
  }
  if (cfg.arena_enabled()) {
    std::printf("arena: chunk=%zuMB hugepages=%s numa=%s\n",
                cfg.arena.chunk_bytes >> 20,
                alloc::HugePageModeName(cfg.arena.huge_pages),
                alloc::NumaPolicyName(cfg.arena.numa_policy));
  }
}

/// Prints the effective stream plan once per process (effective-config
/// banner companion of PrintEffectiveConfigOnce).
inline void PrintEffectiveStreamConfigOnce(const stream::StreamOptions& o) {
  static bool printed = false;
  if (printed) return;
  printed = true;
  std::printf("stream: epochs=%d window=%d slide=%d (%s)\n", o.epochs,
              o.window, o.effective_slide(),
              o.effective_slide() < o.window ? "sliding" : "tumbling");
}

/// Default executor sizing used across the reproduction benches: two
/// executors with 64 MB heaps stand in for the paper's five 30 GB workers
/// (a ~1000x uniform down-scale; all reported effects are ratios).
///
/// Environment overrides (results stay bit-identical across both):
///   DECA_EXECUTORS=N        executor count (default 2)
///   DECA_HEAP_MB=MB         per-executor simulated heap (default: the
///                           bench's own sizing, usually 64) — shrink it
///                           to force GC activity at CI scales, e.g. for
///                           the pause-budget SLO leg
///   DECA_WORKER_THREADS=N   parallel runtime threads (default 0 =
///                           sequential driver loop)
///   DECA_EXECUTOR_MEMORY=MB unified per-executor memory budget
///                           (default 0 = heap * memory_fraction)
///   DECA_STORAGE_FRACTION=F storage-pool floor share of the budget
///                           (default 0.5)
///
/// Deterministic fault injection (default off; numbers are unchanged and
/// no retry counters increment unless one of these is set):
///   DECA_FAULT_SEED=N        injection seed (default 1)
///   DECA_FAULT_TASK_PROB=P   per-attempt injected task-failure probability
///   DECA_FAULT_FETCH_PROB=P  per-attempt shuffle-fetch failure probability
///   DECA_FAULT_OOM_PROB=P    per-attempt forced allocation-failure prob.
///   DECA_CRASH_WIPE_STAGE=N / DECA_CRASH_WIPE_EXECUTOR=E
///                            crash-wipe executor E before stage N
///
/// Shuffle transport seam (src/net; results are bit-identical to local):
///   DECA_SHUFFLE_TRANSPORT=local|network|loopback|tcp
///                            "network" is an alias for "loopback", the
///                            deterministic in-process wire (default local)
///   DECA_NET_LATENCY_US=N    simulated per-message latency, virtual time
///   DECA_NET_BANDWIDTH_MBPS=N simulated wire bandwidth (0 = infinite)
///
/// Distributed control plane (src/cluster; digests, GC counts and fault
/// counters are bit-identical to the in-process run):
///   DECA_DIST_MODE=local|process
///                            "process" spawns one deca_executord daemon
///                            per executor and drives stages over RPC
///   DECA_HEARTBEAT_MS=N      driver liveness ping period (default 100)
///   DECA_HEARTBEAT_MISSES=N  consecutive misses before reconnect probing
///   DECA_RPC_DEADLINE_MS=N   control RPC response deadline
///   DECA_RETRY_BACKOFF_MS=N  base of the exponential probe/retry backoff
///   DECA_EXECUTORD=PATH      daemon binary (default: next to the bench)
///
/// Tiered block store (src/spark/block_store; with the default of 2 the
/// legacy heap <-> disk store runs bit-identically):
///   DECA_STORAGE_TIER=2|3    3 enables the serialized off-heap tier (T1)
///                            between heap blocks (T0) and disk (T2)
///   DECA_T1_FRACTION=F       T1 residency cap as a share of the unified
///                            executor budget (default 0.5)
///   DECA_ADMIT_POLICY=always|second_access|never
///                            re-admission policy for Gets served from
///                            T1/T2 (default second_access)
///
/// Incremental marking & online lifetime profiling (src/jvm; the defaults
/// keep the historical monolithic mark phases bit-identical):
///   DECA_PAUSE_BUDGET_MS=MS  split STW mark phases into resumable slices
///                            of at most MS milliseconds (0 = monolithic);
///                            workload digests are unchanged either way
///   DECA_LIFETIME_SOURCE=static|profiled|oracle
///                            source of the size/lifetime classification
///                            gating the Deca path (default static; the
///                            profiled/oracle verdicts are cross-checked
///                            against static, so results are identical)
///   DECA_PROFILE_SAMPLE_BYTES=N
///                            profiled-calibration sampling period in
///                            allocated bytes (default 512)
///   DECA_PROFILE_SEED=N      profiler sampling seed (default 1)
///
/// Native arena page allocator (src/alloc; digests, GC counts and fault
/// counters are bit-identical with the arena on or off):
///   DECA_ARENA=0|1           1 backs heap buffers, T1 payloads and spill
///                            staging with mmap'd slab arenas instead of
///                            new[] (default 0)
///   DECA_ARENA_CHUNK_MB=MB   arena chunk (mmap granule) size (default 16)
///   DECA_ARENA_HUGEPAGES=0|1|2
///                            0 = off, 1 = opportunistic MADV_HUGEPAGE
///                            (default), 2 = MAP_HUGETLB with fallback to 1
///   DECA_NUMA_POLICY=none|interleave|local
///                            chunk placement hint (default none; a
///                            documented no-op until mbind is wired)
inline spark::SparkConfig DefaultSpark(size_t heap_mb = 64) {
  spark::SparkConfig cfg;
  cfg.partitions_per_executor = 2;
  cfg.num_executors = EnvInt("DECA_EXECUTORS", 2);
  cfg.num_worker_threads = EnvInt("DECA_WORKER_THREADS", 0);
  cfg.fault.seed = EnvU64("DECA_FAULT_SEED", cfg.fault.seed);
  cfg.fault.task_failure_prob =
      EnvDouble("DECA_FAULT_TASK_PROB", cfg.fault.task_failure_prob);
  cfg.fault.fetch_failure_prob =
      EnvDouble("DECA_FAULT_FETCH_PROB", cfg.fault.fetch_failure_prob);
  cfg.fault.oom_failure_prob =
      EnvDouble("DECA_FAULT_OOM_PROB", cfg.fault.oom_failure_prob);
  cfg.fault.crash_wipe_stage =
      EnvInt("DECA_CRASH_WIPE_STAGE", cfg.fault.crash_wipe_stage, INT32_MIN);
  cfg.fault.crash_wipe_executor = EnvInt("DECA_CRASH_WIPE_EXECUTOR",
                                         cfg.fault.crash_wipe_executor,
                                         INT32_MIN);
  cfg.heap.heap_bytes =
      static_cast<size_t>(EnvU64("DECA_HEAP_MB", heap_mb)) << 20;
  cfg.memory_fraction = 0.75;
  cfg.executor_memory_bytes =
      static_cast<size_t>(EnvU64("DECA_EXECUTOR_MEMORY", 0)) << 20;
  cfg.storage_fraction =
      EnvDouble("DECA_STORAGE_FRACTION", cfg.storage_fraction);
  std::string transport = EnvStr("DECA_SHUFFLE_TRANSPORT", "local");
  if (transport == "network" || transport == "loopback") {
    cfg.shuffle_transport = spark::ShuffleTransport::kLoopback;
  } else if (transport == "tcp") {
    cfg.shuffle_transport = spark::ShuffleTransport::kTcp;
  } else if (transport != "local") {
    std::fprintf(stderr,
                 "unknown DECA_SHUFFLE_TRANSPORT '%s', using local\n",
                 transport.c_str());
  }
  cfg.net_latency_us = EnvU64("DECA_NET_LATENCY_US", cfg.net_latency_us);
  cfg.net_bandwidth_mbps =
      EnvU64("DECA_NET_BANDWIDTH_MBPS", cfg.net_bandwidth_mbps);
  std::string dist = EnvStr("DECA_DIST_MODE", "local");
  if (dist == "process") {
    cfg.dist_mode = spark::DistMode::kProcess;
  } else if (dist != "local" && dist != "inprocess") {
    std::fprintf(stderr, "unknown DECA_DIST_MODE '%s', using local\n",
                 dist.c_str());
  }
  cfg.cluster.heartbeat_interval_ms =
      EnvInt("DECA_HEARTBEAT_MS", cfg.cluster.heartbeat_interval_ms);
  cfg.cluster.heartbeat_miss_threshold =
      EnvInt("DECA_HEARTBEAT_MISSES", cfg.cluster.heartbeat_miss_threshold);
  cfg.cluster.rpc_deadline_ms =
      EnvInt("DECA_RPC_DEADLINE_MS", cfg.cluster.rpc_deadline_ms);
  cfg.cluster.retry_backoff_base_ms =
      EnvInt("DECA_RETRY_BACKOFF_MS", cfg.cluster.retry_backoff_base_ms);
  cfg.cluster.executord_path =
      EnvStr("DECA_EXECUTORD", cfg.cluster.executord_path);
  cfg.storage_tiers = EnvInt("DECA_STORAGE_TIER", cfg.storage_tiers);
  cfg.t1_fraction = EnvDouble("DECA_T1_FRACTION", cfg.t1_fraction);
  std::string admit = EnvStr("DECA_ADMIT_POLICY", "second_access");
  if (admit == "always") {
    cfg.admit_policy = spark::AdmitPolicy::kAlways;
  } else if (admit == "never") {
    cfg.admit_policy = spark::AdmitPolicy::kNever;
  } else if (admit != "second_access") {
    std::fprintf(stderr,
                 "unknown DECA_ADMIT_POLICY '%s', using second_access\n",
                 admit.c_str());
  }
  cfg.heap.pause_budget_ms =
      EnvDouble("DECA_PAUSE_BUDGET_MS", cfg.heap.pause_budget_ms);
  cfg.heap.profile_sample_bytes = static_cast<size_t>(
      EnvU64("DECA_PROFILE_SAMPLE_BYTES", cfg.heap.profile_sample_bytes));
  cfg.heap.profile_seed = EnvU64("DECA_PROFILE_SEED", cfg.heap.profile_seed);
  std::string lifetime = EnvStr("DECA_LIFETIME_SOURCE", "static");
  if (lifetime == "profiled") {
    cfg.lifetime_source = spark::LifetimeSource::kProfiled;
  } else if (lifetime == "oracle") {
    cfg.lifetime_source = spark::LifetimeSource::kOracle;
  } else if (lifetime != "static") {
    std::fprintf(stderr,
                 "unknown DECA_LIFETIME_SOURCE '%s', using static\n",
                 lifetime.c_str());
  }
  cfg.arena.enabled = EnvInt("DECA_ARENA", 0, /*min_value=*/0) > 0;
  cfg.arena.chunk_bytes =
      static_cast<size_t>(EnvU64("DECA_ARENA_CHUNK_MB",
                                 cfg.arena.chunk_bytes >> 20))
      << 20;
  switch (EnvInt("DECA_ARENA_HUGEPAGES", 1, /*min_value=*/0)) {
    case 0:
      cfg.arena.huge_pages = alloc::HugePageMode::kOff;
      break;
    case 2:
      cfg.arena.huge_pages = alloc::HugePageMode::kHugetlb;
      break;
    default:
      cfg.arena.huge_pages = alloc::HugePageMode::kMadvise;
      break;
  }
  cfg.arena.numa_policy =
      alloc::ParseNumaPolicy(EnvStr("DECA_NUMA_POLICY", "none").c_str());
  cfg.spill_dir = "/tmp/deca_bench_spill";
  // Structured tracing: on when a report/trace file was requested
  // (BenchReport) or forced via DECA_TRACE=1. Off by default — the task
  // hot path then costs one thread-local load per hook.
  cfg.trace_enabled = TraceRequested() || EnvInt("DECA_TRACE", 0, 1) > 0;
  cfg.trace_ring_capacity =
      static_cast<uint32_t>(EnvU64("DECA_TRACE_RING", 1u << 15));
  PrintEffectiveConfigOnce(cfg);
  return cfg;
}

/// Windowing plan of the stream benches, with environment overrides:
///   DECA_STREAM_EPOCHS=N  epochs to run (default per bench)
///   DECA_STREAM_WINDOW=N  epochs per window
///   DECA_STREAM_SLIDE=N   window start stride (0 = tumbling)
/// Scaling note: epochs deliberately do NOT shrink with DECA_SCALE — a
/// steady-state drift measurement needs its epoch count; per-epoch record
/// volume is what Scaled() shrinks.
inline stream::StreamOptions DefaultStreamOptions(int epochs_def,
                                                  int window_def,
                                                  int slide_def = 0) {
  stream::StreamOptions opts;
  opts.epochs = EnvInt("DECA_STREAM_EPOCHS", epochs_def);
  opts.window = EnvInt("DECA_STREAM_WINDOW", window_def);
  opts.slide = EnvInt("DECA_STREAM_SLIDE", slide_def, /*min_value=*/0);
  PrintEffectiveStreamConfigOnce(opts);
  return opts;
}

/// Machine-readable run reporting for bench binaries.
///
/// Construct first thing in main (before any DefaultSpark call):
///   BenchReport report("fig11_breakdown", argc, argv);
///   ...
///   report.AddRun("LR-small/Spark", r.run);
///
/// Output targets (either enables tracing for the whole process):
///   --json-out=PATH  / DECA_JSON_OUT=PATH   compact RunReport JSON
///   --trace-out=PATH / DECA_TRACE_OUT=PATH  Chrome trace_event JSON of
///                                           the last added run's trace
/// Files are written in the destructor (i.e. at the end of main).
/// Deterministic counters are marked exact; wall times are not, so
/// report_diff compares them with a relative threshold only.
class BenchReport {
 public:
  BenchReport(const std::string& bench, int argc, char** argv) {
    report_.bench = bench;
    const char* env_json = std::getenv("DECA_JSON_OUT");
    const char* env_trace = std::getenv("DECA_TRACE_OUT");
    if (env_json != nullptr) json_path_ = env_json;
    if (env_trace != nullptr) trace_path_ = env_trace;
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--json-out=", 0) == 0) {
        json_path_ = arg.substr(std::string("--json-out=").size());
      } else if (arg.rfind("--trace-out=", 0) == 0) {
        trace_path_ = arg.substr(std::string("--trace-out=").size());
      }
    }
    if (!json_path_.empty() || !trace_path_.empty()) TraceRequested() = true;
  }

  ~BenchReport() { Write(); }

  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;

  bool enabled() const { return !json_path_.empty() || !trace_path_.empty(); }

  /// Adds one run to the report. Exact metrics are deterministic counters
  /// and byte peaks; *_ms metrics are wall times.
  void AddRun(const std::string& label, const workloads::RunResult& r) {
    obs::ReportRun run;
    run.label = label;
    auto exact = [&run](const char* name, double v) {
      run.Add(name, v, /*exact=*/true);
    };
    auto time = [&run](const char* name, double v) {
      run.Add(name, v, /*exact=*/false);
    };
    exact("minor_gcs", static_cast<double>(r.minor_gcs));
    exact("full_gcs", static_cast<double>(r.full_gcs));
    exact("cached_mb", r.cached_mb);
    exact("swapped_mb", r.swapped_mb);
    exact("task_retries", static_cast<double>(r.task_retries));
    exact("injected_faults", static_cast<double>(r.injected_faults));
    exact("executor_wipes", static_cast<double>(r.executor_wipes));
    exact("recomputed_blocks", static_cast<double>(r.recomputed_blocks));
    exact("pressure_evictions", static_cast<double>(r.pressure_evictions));
    exact("oom_recoveries", static_cast<double>(r.oom_recoveries));
    exact("denied_reservations", static_cast<double>(r.denied_reservations));
    uint64_t exec_peak = 0;
    uint64_t storage_peak = 0;
    uint64_t borrowed_peak = 0;
    for (const memory::MemoryStats& m : r.executor_memory) {
      exec_peak += m.exec_peak;
      storage_peak += m.storage_peak;
      borrowed_peak += m.borrowed_peak;
    }
    exact("exec_pool_peak_bytes", static_cast<double>(exec_peak));
    exact("storage_pool_peak_bytes", static_cast<double>(storage_peak));
    exact("borrowed_peak_bytes", static_cast<double>(borrowed_peak));
    // The slowest task is selected by wall time, so which task's peak this
    // is varies across machines — threshold-compared, not exact.
    time("slowest.pool_peak_bytes",
         static_cast<double>(r.slowest_task.exec_pool_peak_bytes +
                             r.slowest_task.storage_pool_peak_bytes));
    time("exec_ms", r.exec_ms);
    time("load_ms", r.load_ms);
    time("gc_ms", r.gc_ms);
    time("concurrent_gc_ms", r.concurrent_gc_ms);
    time("shuffle_read_ms", r.shuffle_read_ms);
    time("shuffle_write_ms", r.shuffle_write_ms);
    time("ser_ms", r.ser_ms);
    time("deser_ms", r.deser_ms);
    time("spill_ms", r.spill_ms);
    time("compute_ms", r.compute_ms);
    time("slowest.total_ms", r.slowest_task.total_ms);
    time("slowest.compute_ms", r.slowest_task.compute_ms());
    time("slowest.gc_ms", r.slowest_task.gc_ms);
    time("slowest.queue_ms", r.slowest_task.queue_ms);
    if (r.net_active) {
      // Wire plane, present only under a network shuffle transport. New
      // metrics on the current side are "extra" to report_diff, so these
      // runs still diff cleanly against local-shuffle baselines.
      exact("net.wire_bytes", static_cast<double>(r.net.wire_bytes));
      exact("net.payload_bytes", static_cast<double>(r.net.payload_bytes));
      exact("net.messages", static_cast<double>(r.net.messages));
      exact("net.index_requests", static_cast<double>(r.net.index_requests));
      exact("net.slice_requests", static_cast<double>(r.net.slice_requests));
      exact("net.records_encoded",
            static_cast<double>(r.net.records_encoded));
      exact("net.records_decoded",
            static_cast<double>(r.net.records_decoded));
      exact("net.fetch_retries", static_cast<double>(r.net.fetch_retries));
      exact("net.injected_fetch_failures",
            static_cast<double>(r.net.injected_fetch_failures));
      exact("net.flow_stalls", static_cast<double>(r.net.flow_stalls));
      exact("net.virtual_wire_us",
            static_cast<double>(r.net.virtual_wire_us));
      time("net.encode_ms", r.net.encode_ms);
      time("net.decode_ms", r.net.decode_ms);
    }
    if (r.dist_active) {
      // Control plane, present only under DECA_DIST_MODE=process. Spawn /
      // kill / respawn / death / quarantine counts are deterministic for a
      // given fault seed; heartbeat, probe and RPC-message counts are
      // wall-clock paced, so they diff with a threshold only.
      exact("cluster.executors_spawned",
            static_cast<double>(r.cluster.executors_spawned));
      exact("cluster.executors_killed",
            static_cast<double>(r.cluster.executors_killed));
      exact("cluster.executors_respawned",
            static_cast<double>(r.cluster.executors_respawned));
      exact("cluster.executors_declared_dead",
            static_cast<double>(r.cluster.executors_declared_dead));
      exact("cluster.stage_quarantines",
            static_cast<double>(r.cluster.stage_quarantines));
      time("cluster.heartbeats_sent",
           static_cast<double>(r.cluster.heartbeats_sent));
      time("cluster.heartbeat_misses",
           static_cast<double>(r.cluster.heartbeat_misses));
      time("cluster.reconnect_probes",
           static_cast<double>(r.cluster.reconnect_probes));
      time("cluster.rpc_messages",
           static_cast<double>(r.cluster.rpc_messages));
    }
    if (r.tier_active) {
      // Storage-tier plane (schema v3), present only when
      // DECA_STORAGE_TIER=3 enabled the serialized off-heap tier. The
      // resident/hit/demote counters are deterministic; promote
      // percentiles are wall times.
      run.tier.present = true;
      run.tier.t0_resident_bytes = r.tier.t0_resident_bytes;
      run.tier.t1_resident_bytes = r.tier.t1_resident_bytes;
      run.tier.t2_resident_bytes = r.tier.t2_resident_bytes;
      run.tier.t1_peak_bytes = r.tier.t1_peak_bytes;
      run.tier.t0_hits = r.tier.t0_hits;
      run.tier.t1_hits = r.tier.t1_hits;
      run.tier.t2_hits = r.tier.t2_hits;
      run.tier.misses = r.tier.misses;
      run.tier.demotes_to_t1 = r.tier.demotes_to_t1;
      run.tier.demotes_to_t2 = r.tier.demotes_to_t2;
      run.tier.promotes = r.tier.promotes;
      run.tier.admit_rejects = r.tier.admit_rejects;
      run.tier.promote_p50_ms = r.tier.promote_p50_ms;
      run.tier.promote_p99_ms = r.tier.promote_p99_ms;
      exact("tier.t1_peak_bytes", static_cast<double>(r.tier.t1_peak_bytes));
      exact("tier.t0_hits", static_cast<double>(r.tier.t0_hits));
      exact("tier.t1_hits", static_cast<double>(r.tier.t1_hits));
      exact("tier.t2_hits", static_cast<double>(r.tier.t2_hits));
      exact("tier.misses", static_cast<double>(r.tier.misses));
      exact("tier.demotes_to_t1",
            static_cast<double>(r.tier.demotes_to_t1));
      exact("tier.demotes_to_t2",
            static_cast<double>(r.tier.demotes_to_t2));
      exact("tier.promotes", static_cast<double>(r.tier.promotes));
      exact("tier.admit_rejects",
            static_cast<double>(r.tier.admit_rejects));
      time("tier.promote_p50_ms", r.tier.promote_p50_ms);
      time("tier.promote_p99_ms", r.tier.promote_p99_ms);
    }
    if (r.epochs_run > 0) {
      // Streaming plane (schema v2): typed epoch aggregate plus flat
      // metrics. Like net.*, these are "extra" against batch baselines.
      run.epochs.present = true;
      run.epochs.epochs_run = r.epochs_run;
      run.epochs.windows = r.windows_emitted;
      run.epochs.reclaimed_bytes = r.epoch_reclaimed_bytes;
      run.epochs.pause_p50_ms = r.epoch_pause_p50_ms;
      run.epochs.pause_p99_ms = r.epoch_pause_p99_ms;
      run.epochs.reclaim_p99_ms = r.epoch_reclaim_p99_ms;
      exact("epoch.epochs_run", static_cast<double>(r.epochs_run));
      exact("epoch.windows", static_cast<double>(r.windows_emitted));
      exact("epoch.reclaimed_bytes",
            static_cast<double>(r.epoch_reclaimed_bytes));
      exact("epoch.footprint_base_bytes",
            static_cast<double>(r.footprint_base_bytes));
      exact("epoch.footprint_end_bytes",
            static_cast<double>(r.footprint_end_bytes));
      exact("epoch.footprint_peak_bytes",
            static_cast<double>(r.footprint_peak_bytes));
      time("epoch.pause_p50_ms", r.epoch_pause_p50_ms);
      time("epoch.pause_p99_ms", r.epoch_pause_p99_ms);
      time("epoch.reclaim_p99_ms", r.epoch_reclaim_p99_ms);
    }
    if (r.pauses.pause_events > 0 || r.pauses.mark_slices > 0) {
      // GC pause plane (schema v4): typed aggregate plus flat metrics.
      // mark_slices/pause_events are deterministic at the default
      // DECA_PAUSE_BUDGET_MS=0 (one slice per monolithic mark); budgeted
      // runs must be gated with report_diff --slo assertions rather than
      // baseline diffs, since their slice counts are timing-dependent.
      run.pauses.present = true;
      run.pauses.mark_slices = r.pauses.mark_slices;
      run.pauses.pause_events = r.pauses.pause_events;
      run.pauses.pause_p50_ms = r.pauses.pause_p50_ms;
      run.pauses.pause_p99_ms = r.pauses.pause_p99_ms;
      run.pauses.pause_max_ms = r.pauses.pause_max_ms;
      run.pauses.slice_p50_ms = r.pauses.slice_p50_ms;
      run.pauses.slice_p99_ms = r.pauses.slice_p99_ms;
      run.pauses.slice_max_ms = r.pauses.slice_max_ms;
      exact("pauses.mark_slices",
            static_cast<double>(r.pauses.mark_slices));
      exact("pauses.events", static_cast<double>(r.pauses.pause_events));
      time("pauses.pause_p50_ms", r.pauses.pause_p50_ms);
      time("pauses.pause_p99_ms", r.pauses.pause_p99_ms);
      time("pauses.pause_max_ms", r.pauses.pause_max_ms);
      time("pauses.slice_p50_ms", r.pauses.slice_p50_ms);
      time("pauses.slice_p99_ms", r.pauses.slice_p99_ms);
      time("pauses.slice_max_ms", r.pauses.slice_max_ms);
    }
    if (r.alloc_active) {
      // Native-allocator plane (schema v5). The call/byte counters are
      // deterministic — every engine consumer routes through the
      // PageAllocator whether the arena is on or off — so they are exact
      // and identical across DECA_ARENA=0|1. The slab/steal/chunk fields
      // depend on thread interleaving and huge-page availability: typed
      // aggregate + inexact flat metrics only (all zero with the arena
      // off, so full diffs against DECA_ARENA=0 baselines compare 0==0).
      run.alloc.present = true;
      run.alloc.arena = r.alloc_arena;
      run.alloc.alloc_calls = r.alloc.alloc_calls;
      run.alloc.free_calls = r.alloc.free_calls;
      run.alloc.bytes_requested = r.alloc.bytes_requested;
      run.alloc.slab_allocs = r.alloc.slab_allocs;
      run.alloc.slab_reuses = r.alloc.slab_reuses;
      run.alloc.freelist_steals = r.alloc.freelist_steals;
      run.alloc.remote_frees = r.alloc.remote_frees;
      run.alloc.direct_maps = r.alloc.direct_maps;
      run.alloc.direct_unmaps = r.alloc.direct_unmaps;
      run.alloc.chunks_mapped = r.alloc.chunks_mapped;
      run.alloc.hugepage_chunks = r.alloc.hugepage_chunks;
      run.alloc.arena_bytes_reserved = r.alloc.arena_bytes_reserved;
      exact("alloc.allocs", static_cast<double>(r.alloc.alloc_calls));
      exact("alloc.frees", static_cast<double>(r.alloc.free_calls));
      exact("alloc.bytes_requested",
            static_cast<double>(r.alloc.bytes_requested));
      time("alloc.chunks_mapped",
           static_cast<double>(r.alloc.chunks_mapped));
      time("alloc.hugepage_chunks",
           static_cast<double>(r.alloc.hugepage_chunks));
      time("alloc.slab_reuses", static_cast<double>(r.alloc.slab_reuses));
      time("alloc.freelist_steals",
           static_cast<double>(r.alloc.freelist_steals));
      time("alloc.direct_maps", static_cast<double>(r.alloc.direct_maps));
    }
    if (r.trace != nullptr) {
      exact("trace.dropped_events",
            static_cast<double>(r.trace->dropped_events));
      run.spans = r.trace->Aggregate();
      last_trace_ = r.trace;
    }
    report_.runs.push_back(std::move(run));
  }

  /// Appends one extra metric to the most recently added run — for
  /// workload-specific values the RunResult doesn't carry (e.g. sustained
  /// streaming throughput). No-op before the first AddRun.
  void AddMetric(const char* name, double value, bool exact) {
    if (!report_.runs.empty()) report_.runs.back().Add(name, value, exact);
  }

 private:
  void Write() {
    if (!json_path_.empty()) {
      std::string err;
      if (!obs::Validate(report_, &err)) {
        std::fprintf(stderr, "bench report invalid, not written: %s\n",
                     err.c_str());
      } else if (!WriteTextFile(json_path_, obs::ToJson(report_))) {
        std::fprintf(stderr, "cannot write report to %s\n",
                     json_path_.c_str());
      } else {
        std::printf("run report: %s\n", json_path_.c_str());
      }
    }
    if (!trace_path_.empty() && last_trace_ != nullptr) {
      std::string err;
      if (!obs::WriteChromeTrace(*last_trace_, trace_path_, &err)) {
        std::fprintf(stderr, "cannot write trace: %s\n", err.c_str());
      } else {
        std::printf("chrome trace (last run): %s\n", trace_path_.c_str());
      }
    }
  }

  static bool WriteTextFile(const std::string& path,
                            const std::string& content) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    size_t written = std::fwrite(content.data(), 1, content.size(), f);
    bool ok = written == content.size();
    return std::fclose(f) == 0 && ok;
  }

  obs::RunReport report_;
  std::string json_path_;
  std::string trace_path_;
  std::shared_ptr<obs::TraceLog> last_trace_;
};

/// Accumulates the fault-tolerance counters across a bench's runs and
/// prints a summary table — only when something actually fired, so
/// fault-free bench output is byte-identical to before.
struct FaultTotals {
  uint64_t task_retries = 0;
  uint64_t injected_faults = 0;
  uint64_t executor_wipes = 0;
  uint64_t recomputed_blocks = 0;
  uint64_t pressure_evictions = 0;
  uint64_t oom_recoveries = 0;

  void Add(const workloads::RunResult& r) {
    task_retries += r.task_retries;
    injected_faults += r.injected_faults;
    executor_wipes += r.executor_wipes;
    recomputed_blocks += r.recomputed_blocks;
    pressure_evictions += r.pressure_evictions;
    oom_recoveries += r.oom_recoveries;
  }
  bool any() const {
    return task_retries + injected_faults + executor_wipes +
               recomputed_blocks + pressure_evictions + oom_recoveries >
           0;
  }
  void PrintIfAny() const {
    if (!any()) return;
    std::printf("\nFault tolerance (injection active):\n");
    TablePrinter t({"retries", "injected", "wipes", "recomputed",
                    "evictions", "oom rescues"});
    t.AddRow({std::to_string(task_retries), std::to_string(injected_faults),
              std::to_string(executor_wipes),
              std::to_string(recomputed_blocks),
              std::to_string(pressure_evictions),
              std::to_string(oom_recoveries)});
    t.Print();
  }
};

/// Prints one row per executor from a run's memory-manager snapshots:
/// budget, pool peaks, borrowing high-water mark and denied reservations.
inline void PrintExecutorMemory(const workloads::RunResult& r) {
  if (r.executor_memory.empty()) return;
  std::printf("\nPer-executor memory (%s):\n", workloads::ModeName(r.mode));
  TablePrinter t({"exec", "budget(MB)", "heap(MB)", "exec peak(MB)",
                  "storage peak(MB)", "borrowed(MB)", "denied"});
  const double mb = 1 << 20;
  for (size_t i = 0; i < r.executor_memory.size(); ++i) {
    const memory::MemoryStats& m = r.executor_memory[i];
    t.AddRow({std::to_string(i),
              TablePrinter::Num(static_cast<double>(m.total_bytes) / mb, 1),
              TablePrinter::Num(static_cast<double>(m.heap_capacity) / mb, 1),
              TablePrinter::Num(static_cast<double>(m.exec_peak) / mb, 1),
              TablePrinter::Num(static_cast<double>(m.storage_peak) / mb, 1),
              TablePrinter::Num(static_cast<double>(m.borrowed_peak) / mb, 1),
              std::to_string(m.denied_reservations)});
  }
  t.Print();
}

inline void PrintHeader(const std::string& title, const std::string& paper_ref,
                        const std::string& notes) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  if (!notes.empty()) std::printf("%s\n", notes.c_str());
  std::printf("================================================================\n");
}

inline std::string Ms(double v) { return TablePrinter::Num(v, 1); }
inline std::string Mb(double v) { return TablePrinter::Num(v, 1); }
inline std::string Pct(double v) { return TablePrinter::Num(v, 1) + "%"; }
inline std::string Speedup(double base, double v) {
  return TablePrinter::Num(base / v, 2) + "x";
}

/// Emits a (time, value) series as compact table rows, downsampled to at
/// most `max_rows` points.
inline void PrintSeries(const std::string& name, const TimeSeries& ts,
                        int max_rows = 16) {
  std::printf("%s (%zu samples):\n", name.c_str(), ts.size());
  if (ts.size() == 0) return;
  size_t step = ts.size() <= static_cast<size_t>(max_rows)
                    ? 1
                    : ts.size() / static_cast<size_t>(max_rows);
  TablePrinter t({"t(ms)", "value"});
  for (size_t i = 0; i < ts.size(); i += step) {
    t.AddRow({TablePrinter::Num(ts.times_ms[i], 0),
              TablePrinter::Num(ts.values[i], 0)});
  }
  t.Print();
}

}  // namespace deca::bench

#endif  // DECA_BENCH_BENCH_UTIL_H_
