// Sliding-window web-log sessionization: the epoch-pinning stress case.
// Windows of 6 epochs fire every 2, so each epoch stays pinned by up to
// three not-yet-closed windows before its region reclaims. Deca epoch
// regions vs the three GC collectors over a long steady state; the
// overlap means live data per boundary is ~3x the tumbling case, which
// is exactly where collector pause tails grow and region reclaim stays a
// (near-)constant-cost release.

#include <cstdlib>

#include "bench_util.h"
#include "workloads/stream.h"

using namespace deca;
using namespace deca::bench;
using namespace deca::workloads;

namespace {

struct Variant {
  const char* name;
  Mode mode;
  jvm::GcAlgorithm algo;
};

std::string DriftKb(const RunResult& r) {
  double kb = (static_cast<double>(r.footprint_end_bytes) -
               static_cast<double>(r.footprint_base_bytes)) /
              1024.0;
  return TablePrinter::Num(kb, 1);
}

}  // namespace

int main(int argc, char** argv) {
  BenchReport report("stream_sessionize", argc, argv);
  PrintHeader("Streaming sessionization: sliding-window pinning",
              "Sec. 3.4/4 lifetimes; UserVisit-shaped rows (Sec. 6 SQL)",
              "240 epochs, window 6 sliding by 2; DECA_STREAM_* overrides");
  StreamParams p;
  p.stream = DefaultStreamOptions(/*epochs_def=*/240, /*window_def=*/6,
                                  /*slide_def=*/2);
  p.records_per_epoch = Scaled(16'000);
  p.distinct_keys = Scaled(2'048);
  p.spark = DefaultSpark();

  const Variant variants[] = {
      {"Deca", Mode::kDeca, jvm::GcAlgorithm::kParallelScavenge},
      {"Spark-PS", Mode::kSpark, jvm::GcAlgorithm::kParallelScavenge},
      {"Spark-CMS", Mode::kSpark, jvm::GcAlgorithm::kConcurrentMarkSweep},
      {"Spark-G1", Mode::kSpark, jvm::GcAlgorithm::kG1},
  };

  FaultTotals faults;
  TablePrinter t({"variant", "krec/s", "pause p50(ms)", "pause p99(ms)",
                  "reclaim p99(ms)", "gc(ms)", "full GCs", "drift(KB)"});
  uint64_t digest = 0;
  bool digests_agree = true;
  RunResult last;
  for (const Variant& v : variants) {
    p.mode = v.mode;
    p.spark.heap.algorithm = v.algo;
    StreamResult r = RunStreamSessionize(p);
    faults.Add(r.run);
    last = r.run;
    if (digest == 0) digest = r.digest;
    digests_agree = digests_agree && r.digest == digest;
    report.AddRun(std::string("stream-sess/") + v.name, r.run);
    report.AddMetric("throughput_rps", r.throughput_rps, /*exact=*/false);
    // 64-bit session digest in exact halves, mirroring stream_wordcount,
    // so reports from different configurations can be digest-compared.
    report.AddMetric("stream.digest_lo",
                     static_cast<double>(static_cast<uint32_t>(r.digest)),
                     /*exact=*/true);
    report.AddMetric("stream.digest_hi",
                     static_cast<double>(static_cast<uint32_t>(r.digest >> 32)),
                     /*exact=*/true);
    t.AddRow({v.name, TablePrinter::Num(r.throughput_rps / 1000.0, 1),
              Ms(r.run.epoch_pause_p50_ms), Ms(r.run.epoch_pause_p99_ms),
              Ms(r.run.epoch_reclaim_p99_ms), Ms(r.run.gc_ms),
              std::to_string(r.run.full_gcs), DriftKb(r.run)});
  }
  t.Print();
  PrintExecutorMemory(last);
  faults.PrintIfAny();
  std::printf("\nwindow digests agree across variants: %s\n",
              digests_agree ? "yes" : "NO — BUG");
  std::printf(
      "\nExpected shape: identical session counts/digests everywhere;\n"
      "overlapping windows pin ~3x the tumbling live set, widening the\n"
      "collectors' pause tails while region reclaim stays flat; the data\n"
      "plane still drains to empty once the last window retires.\n");
  return digests_agree ? 0 : 1;
}
