// Reproduces Figure 9(b): LR execution time and cached data size across
// dataset sizes for Spark, SparkSer and Deca. Paper shape: moderate gains
// while the cache fits (full GC rare), 16-41.6x once the long-living
// cached objects saturate the old generation (frequent useless full GCs +
// cache swapping); SparkSer helps only in the GC-bound regime.

#include "bench_util.h"
#include "workloads/lr.h"

using namespace deca;
using namespace deca::bench;
using namespace deca::workloads;

int main(int argc, char** argv) {
  BenchReport report("fig09_lr_exec", argc, argv);
  PrintHeader("Figure 9(b): Logistic Regression execution time",
              "Fig. 9(b) — sizes {40..200}GB, Spark/SparkSer/Deca",
              "Scaled: 10-dim points {160k..800k}, 10 iters, 2 x 64MB heaps,"
              " storage fraction 0.9");
  TablePrinter t({"points", "mode", "exec(ms)", "gc(ms)", "gc%", "full GCs",
                  "cached(MB)", "swapped(MB)", "vs Spark"});
  for (uint64_t pts :
       {Scaled(160'000), Scaled(320'000), Scaled(480'000), Scaled(640'000),
        Scaled(800'000)}) {
    double spark_ms = 0;
    for (Mode mode : {Mode::kSpark, Mode::kSparkSer, Mode::kDeca}) {
      MlParams p;
      p.dims = 10;
      p.num_points = pts;
      p.iterations = 10;
      p.mode = mode;
      p.spark = DefaultSpark();
      p.spark.storage_fraction = 0.9;
      LrResult r = RunLogisticRegression(p);
      if (mode == Mode::kSpark) spark_ms = r.run.exec_ms;
      report.AddRun(std::to_string(pts) + "pts/" + ModeName(mode), r.run);
      t.AddRow({std::to_string(pts), ModeName(mode), Ms(r.run.exec_ms),
                Ms(r.run.gc_ms), Pct(100.0 * r.run.gc_ms / r.run.exec_ms),
                std::to_string(r.run.full_gcs), Mb(r.run.cached_mb),
                Mb(r.run.swapped_mb), Speedup(spark_ms, r.run.exec_ms)});
    }
  }
  t.Print();
  std::printf(
      "\nExpected shape: Deca speedup is 2-4x while data fits, then jumps\n"
      "past 10x when Spark starts full-GC thrashing and swapping; Deca's\n"
      "cached footprint is ~45%% smaller and never swaps.\n");
  return 0;
}
