// Reproduces Table 6: the two exploratory SQL queries over cached tables,
// comparing the hand-written RDD program (Spark), a columnar in-memory
// store with serialized aggregation (Spark SQL + Tungsten), and Deca.
// Paper: all three tie on the small filter query; on the GroupBy
// aggregation Deca and Spark SQL cut >50% of Spark's time and ~2x its
// cache footprint, and Deca ~= Spark SQL while keeping Spark's general
// programming model.

#include "bench_util.h"
#include "workloads/sql.h"

using namespace deca;
using namespace deca::bench;
using namespace deca::workloads;

int main(int argc, char** argv) {
  BenchReport report("table6_sql", argc, argv);
  PrintHeader("Table 6: exploratory SQL queries",
              "Table 6 — Q1 (filter) and Q2 (GroupBy-SUM) x 3 systems",
              "Scaled: rankings 400k rows, uservisits 1.2M rows");
  TablePrinter t({"query", "system", "exec(ms)", "gc(ms)", "cache(MB)",
                  "result"});
  for (SqlEngine engine :
       {SqlEngine::kSparkRdd, SqlEngine::kSparkSql, SqlEngine::kDeca}) {
    SqlParams p;
    p.rankings_rows = 400'000;
    p.uservisits_rows = 1'200'000;
    p.engine = engine;
    // Sized so even the object-form tables fully fit in memory, as in the
    // paper ("input tables are entirely cached in memory").
    p.spark = DefaultSpark(128);
    p.spark.storage_fraction = 0.9;
    SqlResult r = RunSqlQueries(p);
    report.AddRun(SqlEngineName(engine), r.run);
    t.AddRow({"Q1", SqlEngineName(engine), Ms(r.q1_exec_ms), Ms(r.q1_gc_ms),
              Mb(r.cached_mb),
              std::to_string(r.q1_matches) + " rows"});
    t.AddRow({"Q2", SqlEngineName(engine), Ms(r.q2_exec_ms), Ms(r.q2_gc_ms),
              Mb(r.cached_mb),
              std::to_string(r.q2_groups) + " groups"});
  }
  t.Print();
  std::printf(
      "\nExpected shape (paper Table 6): Q1 roughly ties; on Q2 Deca and\n"
      "Spark SQL beat Spark by >2x with ~half the cache footprint, and\n"
      "Deca ~= Spark SQL.\n");
  return 0;
}
