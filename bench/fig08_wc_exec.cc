// Reproduces Figure 8(b): WordCount execution times across dataset sizes
// and distinct-key counts, Spark vs Deca. Paper: Deca reduces execution
// time by 10-58%, with larger gains at higher key cardinality because the
// eagerly-combining hash buffer's size (and GC load) scales with the
// number of keys.

#include "bench_util.h"
#include "workloads/wordcount.h"

using namespace deca;
using namespace deca::bench;
using namespace deca::workloads;

int main(int argc, char** argv) {
  BenchReport report("fig08_wc_exec", argc, argv);
  PrintHeader("Figure 8(b): WordCount execution time",
              "Fig. 8(b) — sizes {50,100,150}GB x keys {10M,100M}",
              "Scaled: words {1M,2M,3M} x distinct keys {20k,200k}");
  FaultTotals faults;
  RunResult last_spark, last_deca;
  TablePrinter t({"keys", "words", "Spark exec(ms)", "Spark gc(ms)",
                  "Deca exec(ms)", "Deca gc(ms)", "reduction", "speedup"});
  // Wire-codec ablation (network transport only): the same Deca payload
  // shipped as zero-copy pages vs per-record serialized frames.
  bool net = DefaultSpark().shuffle_transport != spark::ShuffleTransport::kLocal;
  TablePrinter wire({"keys", "words", "page wire(KB)", "record wire(KB)",
                     "page rec enc", "record rec enc", "page enc(ms)",
                     "record enc(ms)"});
  for (uint64_t keys : {Scaled(20'000), Scaled(200'000)}) {
    for (uint64_t words :
         {Scaled(1'000'000), Scaled(2'000'000), Scaled(3'000'000)}) {
      WordCountParams p;
      p.total_words = words;
      p.distinct_keys = keys;
      p.spark = DefaultSpark();
      p.mode = Mode::kSpark;
      WordCountResult spark = RunWordCount(p);
      p.mode = Mode::kDeca;
      WordCountResult deca = RunWordCount(p);
      faults.Add(spark.run);
      faults.Add(deca.run);
      last_spark = spark.run;
      last_deca = deca.run;
      std::string cell =
          std::to_string(keys) + "k/" + std::to_string(words) + "w";
      report.AddRun(cell + "/Spark", spark.run);
      report.AddRun(cell + "/Deca", deca.run);
      if (net) {
        // Same workload, same payload bytes — only the wire codec
        // changes. Page mode must ship fewer bytes and encode zero
        // records (the paper's serialization-elimination claim).
        p.spark.shuffle_wire_codec = spark::ShuffleWireCodec::kRecord;
        WordCountResult rec = RunWordCount(p);
        p.spark.shuffle_wire_codec = spark::ShuffleWireCodec::kAuto;
        faults.Add(rec.run);
        report.AddRun(cell + "/Deca-wire-record", rec.run);
        wire.AddRow(
            {std::to_string(keys), std::to_string(words),
             Mb(static_cast<double>(deca.run.net.wire_bytes) / 1024.0),
             Mb(static_cast<double>(rec.run.net.wire_bytes) / 1024.0),
             std::to_string(deca.run.net.records_encoded),
             std::to_string(rec.run.net.records_encoded),
             Ms(deca.run.net.encode_ms), Ms(rec.run.net.encode_ms)});
      }
      t.AddRow({std::to_string(keys), std::to_string(words),
                Ms(spark.run.exec_ms), Ms(spark.run.gc_ms),
                Ms(deca.run.exec_ms), Ms(deca.run.gc_ms),
                Pct(100.0 * (spark.run.exec_ms - deca.run.exec_ms) /
                    spark.run.exec_ms),
                Speedup(spark.run.exec_ms, deca.run.exec_ms)});
    }
  }
  t.Print();
  if (net) {
    std::printf("\nWire codec ablation (Deca payload, page vs record):\n");
    wire.Print();
  }
  PrintExecutorMemory(last_spark);
  PrintExecutorMemory(last_deca);
  faults.PrintIfAny();
  std::printf(
      "\nExpected shape: Deca wins everywhere; Spark's GC share (and the\n"
      "absolute gap) grows with the number of distinct keys.\n");
  return 0;
}
