// Reproduces Figure 11: breakdown of the slowest task's execution time.
// LR small (minimal GC for all; SparkSer pays deserialization), LR large
// (Spark GC-bound; SparkSer still deserializes), PR (shuffle dominated;
// Deca avoids both GC and serialization).

#include "bench_util.h"
#include "workloads/graph.h"
#include "workloads/lr.h"

using namespace deca;
using namespace deca::bench;
using namespace deca::workloads;

namespace {

void AddBreakdown(TablePrinter* t, const char* app, const char* mode,
                  const spark::TaskMetrics& m) {
  double pool_peak_mb = static_cast<double>(m.exec_pool_peak_bytes +
                                            m.storage_pool_peak_bytes) /
                        (1 << 20);
  t->AddRow({app, mode, Ms(m.total_ms), Ms(m.compute_ms()), Ms(m.gc_ms),
             Ms(m.deser_ms + m.ser_ms), Ms(m.shuffle_read_ms),
             Ms(m.shuffle_write_ms), Ms(m.spill_ms), Ms(m.queue_ms),
             Mb(pool_peak_mb)});
}

}  // namespace

int main(int argc, char** argv) {
  BenchReport report("fig11_breakdown", argc, argv);
  PrintHeader("Figure 11: slowest-task execution time breakdown",
              "Fig. 11 — compute / GC / (de)ser / shuffle per task",
              "LR-small (fits), LR-large (GC + swap), PR (shuffle-heavy)");
  FaultTotals faults;
  std::vector<RunResult> pr_runs;
  TablePrinter t({"job", "mode", "total(ms)", "compute", "gc", "(de)ser",
                  "shuf read", "shuf write", "disk", "queue", "mem(MB)"});
  for (Mode mode : {Mode::kSpark, Mode::kSparkSer, Mode::kDeca}) {
    MlParams p;
    p.num_points = Scaled(240'000);
    p.iterations = 10;
    p.mode = mode;
    p.spark = DefaultSpark();
    p.spark.storage_fraction = 0.9;
    LrResult r = RunLogisticRegression(p);
    faults.Add(r.run);
    AddBreakdown(&t, "LR-small", ModeName(mode), r.run.slowest_task);
    report.AddRun(std::string("LR-small/") + ModeName(mode), r.run);
  }
  for (Mode mode : {Mode::kSpark, Mode::kSparkSer, Mode::kDeca}) {
    MlParams p;
    p.num_points = Scaled(800'000);
    p.iterations = 10;
    p.mode = mode;
    p.spark = DefaultSpark();
    p.spark.storage_fraction = 0.9;
    LrResult r = RunLogisticRegression(p);
    faults.Add(r.run);
    AddBreakdown(&t, "LR-large", ModeName(mode), r.run.slowest_task);
    report.AddRun(std::string("LR-large/") + ModeName(mode), r.run);
  }
  for (Mode mode : {Mode::kSpark, Mode::kSparkSer, Mode::kDeca}) {
    GraphParams p;
    p.num_vertices = static_cast<uint32_t>(Scaled(1u << 17));
    p.num_edges = static_cast<uint32_t>(Scaled(1u << 21));
    p.iterations = 4;
    p.mode = mode;
    p.spark = DefaultSpark();
    p.spark.partitions_per_executor = 4;
    p.spark.storage_fraction = 0.4;
    PageRankResult r = RunPageRank(p);
    faults.Add(r.run);
    AddBreakdown(&t, "PR", ModeName(mode), r.run.slowest_task);
    report.AddRun(std::string("PR/") + ModeName(mode), r.run);
    pr_runs.push_back(r.run);
  }
  t.Print();
  for (const RunResult& r : pr_runs) PrintExecutorMemory(r);
  faults.PrintIfAny();
  std::printf(
      "\nExpected shape (paper Fig. 11): LR-small — SparkSer's bar is\n"
      "dominated by deserialization; LR-large — Spark's bar is dominated\n"
      "by GC; PR — Spark/SparkSer pay shuffle (de)serialization that Deca\n"
      "avoids by emitting raw decomposed bytes.\n");
  return 0;
}
