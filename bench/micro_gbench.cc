// Micro/ablation benchmarks (google-benchmark) for the design choices
// DESIGN.md calls out: decomposed page access vs managed object-graph
// traversal, in-place vs allocating shuffle combining, GC pause cost vs
// live object count, page-size sweep, and serializer throughput.

#include <benchmark/benchmark.h>

#include <map>
#include <unordered_map>

#include "alloc/page_allocator.h"
#include "common/random.h"
#include "core/page.h"
#include "obs/trace.h"
#include "spark/context.h"
#include "spark/shuffle.h"
#include "spark/tier_backend.h"
#include "stream/epoch_region.h"
#include "stream/stream_context.h"
#include "workloads/lr.h"

namespace deca {
namespace {

using workloads::LrTypes;

constexpr int kDims = 10;

struct HeapFixture {
  HeapFixture() : types(&registry, kDims) {
    jvm::HeapConfig cfg;
    cfg.heap_bytes = 128u << 20;
    heap = std::make_unique<jvm::Heap>(cfg, &registry);
  }
  jvm::ClassRegistry registry;
  LrTypes types;
  std::unique_ptr<jvm::Heap> heap;
};

/// Scanning decomposed pages (Deca's cached layout).
void BM_PageScanGradient(benchmark::State& state) {
  HeapFixture f;
  const int n = static_cast<int>(state.range(0));
  core::PageGroup pages(f.heap.get(), 64u << 10);
  Rng rng(1);
  uint32_t rec = 8 + 8 * kDims;
  for (int i = 0; i < n; ++i) {
    core::SegPtr s = pages.Append(rec);
    uint8_t* p = pages.Resolve(s);
    StoreRaw<double>(p, 1.0);
    for (int j = 0; j < kDims; ++j) {
      StoreRaw<double>(p + 8 + 8 * j, rng.NextDouble());
    }
  }
  std::vector<double> weights(kDims, 0.5);
  std::vector<double> grad(kDims, 0.0);
  for (auto _ : state) {
    core::PageScanner scan(&pages);
    double dot = 0;
    while (!scan.AtEnd()) {
      const uint8_t* p = scan.Cur();
      for (int j = 0; j < kDims; ++j) {
        dot += weights[static_cast<size_t>(j)] *
               LoadRaw<double>(p + 8 + 8 * j);
      }
      scan.Advance(rec);
    }
    benchmark::DoNotOptimize(dot);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PageScanGradient)->Arg(10000)->Arg(50000);

/// Traversing the equivalent managed object graph (Spark's cached layout).
void BM_ObjectScanGradient(benchmark::State& state) {
  HeapFixture f;
  const int n = static_cast<int>(state.range(0));
  jvm::HandleScope scope(f.heap.get());
  jvm::Handle arr = scope.Make(f.heap->AllocateArray(
      f.registry.ref_array_class(), static_cast<uint32_t>(n)));
  Rng rng(1);
  double feats[kDims];
  for (int i = 0; i < n; ++i) {
    jvm::HandleScope inner(f.heap.get());
    for (auto& v : feats) v = rng.NextDouble();
    jvm::ObjRef lp = f.types.NewLabeledPoint(f.heap.get(), 1.0, feats);
    f.heap->SetRefElem(arr.get(), static_cast<uint32_t>(i), lp);
  }
  std::vector<double> weights(kDims, 0.5);
  for (auto _ : state) {
    double dot = 0;
    for (int i = 0; i < n; ++i) {
      jvm::ObjRef lp = f.heap->GetRefElem(arr.get(), static_cast<uint32_t>(i));
      jvm::ObjRef dv = f.heap->GetRefField(lp, f.types.lp_features_off());
      jvm::ObjRef data = f.heap->GetRefField(dv, f.types.dv_data_off());
      for (int j = 0; j < kDims; ++j) {
        dot += weights[static_cast<size_t>(j)] *
               f.heap->GetElem<double>(data, static_cast<uint32_t>(j));
      }
    }
    benchmark::DoNotOptimize(dot);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ObjectScanGradient)->Arg(10000)->Arg(50000);

spark::ShuffleOps SumOps(jvm::ClassRegistry* registry) {
  (void)registry;
  spark::ShuffleOps ops;
  ops.key_hash = [](jvm::Heap* h, jvm::ObjRef k) -> uint64_t {
    return static_cast<uint64_t>(h->GetField<int64_t>(k, 0)) *
           0x9e3779b97f4a7c15ULL;
  };
  ops.key_equals = [](jvm::Heap* h, jvm::ObjRef a, jvm::ObjRef b) {
    return h->GetField<int64_t>(a, 0) == h->GetField<int64_t>(b, 0);
  };
  ops.combine = [](jvm::Heap* h, jvm::ObjRef agg, jvm::ObjRef v) {
    int64_t sum = h->GetField<int64_t>(agg, 0) + h->GetField<int64_t>(v, 0);
    jvm::ObjRef fresh = h->AllocateInstance(h->registry()->boxed_long_class());
    h->SetField<int64_t>(fresh, 0, sum);
    return fresh;
  };
  ops.entry_bytes = [](jvm::Heap*, jvm::ObjRef, jvm::ObjRef) -> uint64_t {
    return 56;
  };
  ops.deca_key_bytes = 8;
  ops.deca_value_bytes = 8;
  ops.deca_key_hash = [](const uint8_t* k) -> uint64_t {
    return LoadRaw<uint64_t>(k) * 0x9e3779b97f4a7c15ULL;
  };
  ops.deca_combine = [](uint8_t* agg, const uint8_t* v) {
    StoreRaw<int64_t>(agg, LoadRaw<int64_t>(agg) + LoadRaw<int64_t>(v));
  };
  return ops;
}

/// Object-mode eager combining: allocates boxed key/value per insert and a
/// fresh aggregate per merge.
void BM_ObjectHashCombine(benchmark::State& state) {
  HeapFixture f;
  spark::ShuffleOps ops = SumOps(&f.registry);
  const uint64_t keys = static_cast<uint64_t>(state.range(0));
  Rng rng(3);
  for (auto _ : state) {
    spark::ObjectHashShuffleBuffer buf(f.heap.get(), &ops);
    for (int i = 0; i < 50000; ++i) {
      jvm::HandleScope scope(f.heap.get());
      jvm::Handle k = scope.Make(
          f.heap->AllocateInstance(f.registry.boxed_long_class()));
      f.heap->SetField<int64_t>(k.get(), 0,
                                static_cast<int64_t>(rng.NextBounded(keys)));
      jvm::Handle v = scope.Make(
          f.heap->AllocateInstance(f.registry.boxed_long_class()));
      f.heap->SetField<int64_t>(v.get(), 0, 1);
      buf.Insert(k.get(), v.get());
    }
    benchmark::DoNotOptimize(buf.size());
  }
  state.SetItemsProcessed(state.iterations() * 50000);
}
BENCHMARK(BM_ObjectHashCombine)->Arg(1000)->Arg(20000);

/// Deca in-place combining over page segments: zero allocation per merge.
void BM_DecaHashCombine(benchmark::State& state) {
  HeapFixture f;
  spark::ShuffleOps ops = SumOps(&f.registry);
  const uint64_t keys = static_cast<uint64_t>(state.range(0));
  Rng rng(3);
  for (auto _ : state) {
    spark::DecaHashShuffleBuffer buf(f.heap.get(), &ops, 64u << 10);
    for (int i = 0; i < 50000; ++i) {
      int64_t k = static_cast<int64_t>(rng.NextBounded(keys));
      int64_t one = 1;
      buf.Insert(reinterpret_cast<const uint8_t*>(&k),
                 reinterpret_cast<const uint8_t*>(&one));
    }
    benchmark::DoNotOptimize(buf.size());
  }
  state.SetItemsProcessed(state.iterations() * 50000);
}
BENCHMARK(BM_DecaHashCombine)->Arg(1000)->Arg(20000);

/// Ablation: the static-offset hash table (paper Section 4.3.2 — no
/// pointer array, slots addressed arithmetically within the pages) vs the
/// pointer-array variant measured above.
void BM_DecaStaticHashCombine(benchmark::State& state) {
  HeapFixture f;
  spark::ShuffleOps ops = SumOps(&f.registry);
  const uint64_t keys = static_cast<uint64_t>(state.range(0));
  Rng rng(3);
  for (auto _ : state) {
    spark::DecaStaticHashShuffleBuffer buf(f.heap.get(), &ops, 64u << 10);
    for (int i = 0; i < 50000; ++i) {
      int64_t k = static_cast<int64_t>(rng.NextBounded(keys));
      int64_t one = 1;
      buf.Insert(reinterpret_cast<const uint8_t*>(&k),
                 reinterpret_cast<const uint8_t*>(&one));
    }
    benchmark::DoNotOptimize(buf.size());
  }
  state.SetItemsProcessed(state.iterations() * 50000);
}
BENCHMARK(BM_DecaStaticHashCombine)->Arg(1000)->Arg(20000);

/// Full-GC pause as a function of the number of live objects — the core
/// cost Deca eliminates by replacing millions of objects with a few pages.
void BM_FullGcPauseVsLiveObjects(benchmark::State& state) {
  HeapFixture f;
  const int n = static_cast<int>(state.range(0));
  jvm::VectorRootProvider roots;
  f.heap->AddRootProvider(&roots);
  Rng rng(5);
  double feats[kDims];
  for (int i = 0; i < n; ++i) {
    jvm::HandleScope inner(f.heap.get());
    for (auto& v : feats) v = rng.NextDouble();
    roots.refs().push_back(
        f.types.NewLabeledPoint(f.heap.get(), 1.0, feats));
  }
  for (auto _ : state) {
    f.heap->CollectFull();
  }
  f.heap->RemoveRootProvider(&roots);
  state.counters["live_objects"] = 3.0 * n;
}
BENCHMARK(BM_FullGcPauseVsLiveObjects)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

/// Same live data held as decomposed pages: the GC traces only the pages.
void BM_FullGcPauseVsLivePages(benchmark::State& state) {
  HeapFixture f;
  const int n = static_cast<int>(state.range(0));
  core::PageGroup pages(f.heap.get(), 64u << 10);
  for (int i = 0; i < n; ++i) pages.Append(8 + 8 * kDims);
  for (auto _ : state) {
    f.heap->CollectFull();
  }
  state.counters["pages"] = static_cast<double>(pages.page_count());
}
BENCHMARK(BM_FullGcPauseVsLivePages)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

/// Page-size ablation: too-small pages mean more GC roots and more append
/// overhead; too-large pages waste tail space (reported as a counter).
void BM_PageSizeAblation(benchmark::State& state) {
  HeapFixture f;
  const uint32_t page_bytes = static_cast<uint32_t>(state.range(0));
  const uint32_t rec = 88;
  for (auto _ : state) {
    core::PageGroup pages(f.heap.get(), page_bytes);
    for (int i = 0; i < 20000; ++i) pages.Append(rec);
    benchmark::DoNotOptimize(pages.page_count());
    state.counters["pages"] = static_cast<double>(pages.page_count());
    state.counters["waste_pct"] =
        100.0 *
        (static_cast<double>(pages.footprint_bytes()) -
         static_cast<double>(pages.used_bytes())) /
        static_cast<double>(pages.footprint_bytes());
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_PageSizeAblation)
    ->Arg(1u << 10)
    ->Arg(16u << 10)
    ->Arg(64u << 10)
    ->Arg(1u << 20);

/// Probe keys for the block-store lookup pair below: the sub-block key
/// population of a serving run (a handful of RDD ids, sequential
/// partition*1024+sub granules), probed in a deterministic shuffled order.
std::vector<spark::BlockKey> LookupKeys(int n) {
  std::vector<spark::BlockKey> keys;
  keys.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    keys.push_back({i % 4, (i / 4) * 1024 + i % 1024});
  }
  Rng rng(11);
  for (size_t i = keys.size(); i > 1; --i) {
    std::swap(keys[i - 1], keys[rng.NextBounded(i)]);
  }
  return keys;
}

/// The CacheManager's hot lookup before the tiered refactor: an ordered
/// std::map keyed by BlockKey (one pointer-chasing tree descent per Get).
void BM_BlockKeyMapLookup(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<spark::BlockKey> keys = LookupKeys(n);
  std::map<spark::BlockKey, uint64_t> blocks;
  for (const auto& k : keys) {
    blocks[k] = static_cast<uint64_t>(k.partition);
  }
  for (auto _ : state) {
    uint64_t sum = 0;
    for (const auto& k : keys) sum += blocks.find(k)->second;
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BlockKeyMapLookup)->Arg(1024)->Arg(16384);

/// The replacement: unordered_map with the splitmix64-mixed BlockKeyHash —
/// one bucket probe per Get, no ordering maintained.
void BM_BlockKeyHashLookup(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<spark::BlockKey> keys = LookupKeys(n);
  std::unordered_map<spark::BlockKey, uint64_t, spark::BlockKeyHash> blocks;
  for (const auto& k : keys) {
    blocks[k] = static_cast<uint64_t>(k.partition);
  }
  for (auto _ : state) {
    uint64_t sum = 0;
    for (const auto& k : keys) sum += blocks.find(k)->second;
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BlockKeyHashLookup)->Arg(1024)->Arg(16384);

/// Kryo-style serialization / deserialization throughput per record.
void BM_KryoSerialize(benchmark::State& state) {
  HeapFixture f;
  jvm::HandleScope scope(f.heap.get());
  double feats[kDims];
  for (int j = 0; j < kDims; ++j) feats[j] = j * 0.25;
  jvm::Handle lp =
      scope.Make(f.types.NewLabeledPoint(f.heap.get(), 1.0, feats));
  ByteWriter w;
  for (auto _ : state) {
    w.Clear();
    f.types.ops().serialize(f.heap.get(), lp.get(), &w);
    benchmark::DoNotOptimize(w.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KryoSerialize);

void BM_KryoDeserialize(benchmark::State& state) {
  HeapFixture f;
  jvm::HandleScope scope(f.heap.get());
  double feats[kDims];
  for (int j = 0; j < kDims; ++j) feats[j] = j * 0.25;
  jvm::Handle lp =
      scope.Make(f.types.NewLabeledPoint(f.heap.get(), 1.0, feats));
  ByteWriter w;
  f.types.ops().serialize(f.heap.get(), lp.get(), &w);
  for (auto _ : state) {
    jvm::HandleScope inner(f.heap.get());
    ByteReader r(w.data(), w.size());
    benchmark::DoNotOptimize(f.types.ops().deserialize(f.heap.get(), &r));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KryoDeserialize);

/// Tracing overhead, disabled path: no recorder installed, so every hook
/// is one thread-local load plus a branch. This is the cost every
/// instrumented site pays when tracing is off (the default).
void BM_TraceHookDisabled(benchmark::State& state) {
  obs::ScopedRecorder off(nullptr);
  for (auto _ : state) {
    obs::Instant(obs::Cat::kMemory, "deny", 4096, 0);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceHookDisabled);

/// Tracing overhead, enabled path: one ring-buffer slot write per event,
/// no allocation (the ring is preallocated at BeginWindow time).
void BM_TraceRecordInstant(benchmark::State& state) {
  obs::TraceRecorder rec(/*executor=*/0, 1u << 15);
  rec.BeginWindow(0, 0, 0);
  obs::ScopedRecorder on(&rec);
  for (auto _ : state) {
    obs::Instant(obs::Cat::kMemory, "deny", 4096, 0);
  }
  benchmark::DoNotOptimize(rec.pending());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceRecordInstant);

spark::SparkConfig StreamBenchConfig() {
  spark::SparkConfig cfg;
  cfg.num_executors = 2;
  cfg.partitions_per_executor = 2;
  cfg.heap.heap_bytes = 32u << 20;
  return cfg;
}

/// Fixed cost of one streaming epoch with no data: region open, window
/// bookkeeping, accounting re-verification and footprint sampling at the
/// boundary, reclaim of the empty region. This is the floor every epoch
/// pays regardless of payload — it must stay microseconds, far below any
/// per-epoch GC pause it replaces.
void BM_EpochOpenClose(benchmark::State& state) {
  spark::SparkConfig cfg = StreamBenchConfig();
  spark::SparkContext ctx(cfg);
  stream::StreamOptions opts;
  opts.epochs = static_cast<int>(state.range(0));
  opts.window = 4;
  for (auto _ : state) {
    stream::StreamContext sc(&ctx, opts);
    sc.RunEpochs([](int, stream::EpochRegion&) {},
                 [](const stream::StreamWindow&) {});
    benchmark::DoNotOptimize(sc.epochs_run());
  }
  state.SetItemsProcessed(state.iterations() * opts.epochs);
  state.counters["us_per_epoch"] = benchmark::Counter(
      static_cast<double>(state.iterations() * opts.epochs),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_EpochOpenClose)->Arg(16)->Arg(64)->Unit(benchmark::kMicrosecond);

/// Region reclaim cost vs adopted page-group count: dropping an epoch is
/// a handful of refcount releases + byte accounting, independent of how
/// many records the pages hold — the paper's constant-ish-cost region
/// free vs per-object collector work.
void BM_EpochRegionReclaimPages(benchmark::State& state) {
  spark::SparkConfig cfg = StreamBenchConfig();
  spark::SparkContext ctx(cfg);
  const int groups = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    stream::EpochRegion region(0, ctx.num_executors());
    for (int g = 0; g < groups; ++g) {
      jvm::Heap* h = ctx.executor(g % ctx.num_executors())->heap();
      auto pages = std::make_shared<core::PageGroup>(h, 16u << 10);
      for (int i = 0; i < 256; ++i) pages->Append(32);
      region.AdoptPages(g % ctx.num_executors(), std::move(pages));
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(region.Reclaim(&ctx));
  }
  state.SetItemsProcessed(state.iterations() * groups);
}
BENCHMARK(BM_EpochRegionReclaimPages)
    ->Arg(4)
    ->Arg(64)
    ->Unit(benchmark::kMicrosecond);

/// Pure region bookkeeping: construct, pin/unpin (one pin per
/// overlapping sliding window), reclaim empty. The driver-side cost of
/// tracking an epoch's lifetime, with no data attached.
void BM_EpochRegionBookkeeping(benchmark::State& state) {
  spark::SparkConfig cfg = StreamBenchConfig();
  spark::SparkContext ctx(cfg);
  for (auto _ : state) {
    stream::EpochRegion region(0, ctx.num_executors());
    region.Pin();
    region.Pin();
    region.Pin();
    region.Unpin();
    region.Unpin();
    benchmark::DoNotOptimize(region.Unpin());
    benchmark::DoNotOptimize(region.Reclaim(&ctx));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EpochRegionBookkeeping);

alloc::ArenaOptions BenchArenaOptions() {
  alloc::ArenaOptions o;
  o.enabled = true;
  return o;
}

/// The block store's buffer traffic shape: a rotating batch of mixed-size
/// packed payloads (48KB..1MB) held live together, then freed together.
/// One "item" is one alloc+free round trip, first and last byte touched.
constexpr size_t kMixedSizes[] = {48u << 10, 64u << 10,  96u << 10,
                                  200u << 10, 256u << 10, 1u << 20,
                                  512u << 10, 80u << 10};
constexpr int kMixedBatch = 32;

/// Arena slab alloc/free over the mixed-size batch. Every size maps to a
/// power-of-two class whose slabs stay pooled on the thread's shard, so
/// steady state is a pop-all + CAS push per block — no syscalls, no
/// split/coalesce, pages stay mapped and faulted. Compare against
/// BM_ArenaVsNewDelete (identical pattern) for the speedup the arena
/// buys the T1/spill staging path.
void BM_ArenaAllocFree(benchmark::State& state) {
  alloc::ArenaAllocator arena(BenchArenaOptions());
  alloc::PageAllocator pa(&arena, /*shards=*/1);
  alloc::Block blocks[kMixedBatch];
  int rot = 0;
  for (auto _ : state) {
    for (int i = 0; i < kMixedBatch; ++i) {
      size_t bytes = kMixedSizes[(i + rot) % 8];
      blocks[i] = pa.Allocate(bytes);
      blocks[i].data[0] = 1;
      blocks[i].data[bytes - 1] = 1;
    }
    benchmark::DoNotOptimize(blocks[0].data);
    for (auto& b : blocks) pa.Free(&b);
    ++rot;
  }
  state.SetItemsProcessed(state.iterations() * kMixedBatch);
}
BENCHMARK(BM_ArenaAllocFree);

/// The new[]/delete[] baseline: identical mixed-size batch and touch
/// pattern. The rotating large blocks defeat malloc's same-size fast
/// paths — glibc re-splits and re-coalesces bins and, for the 1MB
/// block, pays mmap/munmap plus page faults every round — exactly the
/// churn the arena's size-class slabs amortize away.
void BM_ArenaVsNewDelete(benchmark::State& state) {
  uint8_t* blocks[kMixedBatch];
  int rot = 0;
  for (auto _ : state) {
    for (int i = 0; i < kMixedBatch; ++i) {
      size_t bytes = kMixedSizes[(i + rot) % 8];
      blocks[i] = new uint8_t[bytes];
      blocks[i][0] = 1;
      blocks[i][bytes - 1] = 1;
    }
    benchmark::DoNotOptimize(blocks[0]);
    for (auto* b : blocks) delete[] b;
    ++rot;
  }
  state.SetItemsProcessed(state.iterations() * kMixedBatch);
}
BENCHMARK(BM_ArenaVsNewDelete);

/// Contended shard traffic: more threads than shards on one allocator, so
/// frees land on foreign shards (remote_frees) and empty shards raid
/// their siblings under the steal mutex (freelist_steals). Measures the
/// worst-case cross-shard path, not the thread-local fast path.
void BM_FreelistStealContended(benchmark::State& state) {
  static alloc::ArenaAllocator* arena = nullptr;
  static alloc::PageAllocator* pa = nullptr;
  if (state.thread_index() == 0) {
    arena = new alloc::ArenaAllocator(BenchArenaOptions());
    pa = new alloc::PageAllocator(arena, /*shards=*/2);
  }
  constexpr int kBatch = 64;
  constexpr size_t kBytes = 64u << 10;
  alloc::Block blocks[kBatch];
  for (auto _ : state) {
    for (auto& b : blocks) b = pa->Allocate(kBytes);
    for (auto& b : blocks) pa->Free(&b);
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
  if (state.thread_index() == 0) {
    alloc::AllocStats s = pa->Stats();
    state.counters["steals"] = static_cast<double>(s.freelist_steals);
    state.counters["remote_frees"] = static_cast<double>(s.remote_frees);
    delete pa;
    delete arena;
    pa = nullptr;
    arena = nullptr;
  }
}
BENCHMARK(BM_FreelistStealContended)->Threads(4)->UseRealTime();

/// PageGroup append throughput with the heap buffer carved from the arena
/// (DECA_ARENA=1's backing for every managed page). Compare against
/// BM_PageScanGradient-style appends on a standalone make_unique heap:
/// the simulated allocation path is identical, so the delta isolates the
/// physical backing (huge-page mapping vs plain new[]).
void BM_PageGroupAppendArena(benchmark::State& state) {
  alloc::ArenaAllocator arena(BenchArenaOptions());
  alloc::PageAllocator pa(&arena, /*shards=*/1);
  jvm::ClassRegistry registry;
  jvm::HeapConfig cfg;
  cfg.heap_bytes = 128u << 20;
  cfg.page_allocator = &pa;
  jvm::Heap heap(cfg, &registry);
  const uint32_t rec = 88;
  for (auto _ : state) {
    core::PageGroup pages(&heap, 64u << 10);
    for (int i = 0; i < 20000; ++i) pages.Append(rec);
    benchmark::DoNotOptimize(pages.page_count());
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_PageGroupAppendArena);

/// Enabled span: two clock reads plus one slot write at destruction.
void BM_TraceRecordSpan(benchmark::State& state) {
  obs::TraceRecorder rec(/*executor=*/0, 1u << 15);
  rec.BeginWindow(0, 0, 0);
  obs::ScopedRecorder on(&rec);
  for (auto _ : state) {
    obs::ScopedSpan span(obs::Cat::kTask, "task");
    span.set_args(1, 2);
  }
  benchmark::DoNotOptimize(rec.pending());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceRecordSpan);

}  // namespace
}  // namespace deca

BENCHMARK_MAIN();
